package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/workload"
)

// State is a session's lifecycle state.
type State string

// Sessions move created -> running -> done | failed | cancelled.
const (
	StateCreated   State = "created"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// apiError is an error with an HTTP status code attached, so the session
// and manager layers can state intent ("conflict", "not found") without
// importing HTTP handling. retryAfter, when positive, becomes a
// Retry-After header (degraded mode's 503s, admission control's 429s).
type apiError struct {
	code       int
	retryAfter int
	err        error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

func errf(code int, format string, args ...any) error {
	return &apiError{code: code, err: fmt.Errorf(format, args...)}
}

// httpCode maps an error to its HTTP status (400 for plain errors, which
// are validation failures from the layers below).
func httpCode(err error) int {
	if ae, ok := err.(*apiError); ok {
		return ae.code
	}
	return http.StatusBadRequest
}

// BagRequest is the wire form of one bag submission.
type BagRequest struct {
	App    string  `json:"app"`
	Jobs   int     `json:"jobs"`
	Jitter float64 `json:"jitter,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	// At defers the bag's arrival to the given virtual hour.
	At float64 `json:"at,omitempty"`
}

// Session is one named simulation with its own engine, provider, and
// cluster. All methods are safe for concurrent use; while the simulation
// runs, only the run goroutine touches the underlying batch.Service, and
// observers read the published snapshot instead.
type Session struct {
	id   string
	name string
	cfg  SessionConfig

	// remote, when non-nil, marks this session as a proxy for one living in
	// a shard process: every method delegates to the RemoteBackend's wire
	// calls and the fields below stay zero (see remote.go).
	remote *remoteSession

	mu        sync.Mutex
	state     State
	svc       *batch.Service
	submitted int
	snap      batch.Snapshot
	hasSnap   bool
	report    batch.Report
	runErr    error
	cancel    context.CancelFunc
	done      chan struct{}
	subs      map[chan batch.Progress]struct{}
	store     Store
	// bags retains the submissions for store compaction.
	bags []BagRequest
	// wantDetail records that a /jobs or /vms request arrived since the
	// last periodic snapshot, so the run loop pays for the per-job and VM
	// listings only while someone is actually looking; detailWait is
	// created lazily by the first waiting request and closed (then cleared)
	// when a detailed snapshot lands, letting those requests block until
	// the refresh instead of serving data from run start.
	wantDetail atomic.Bool
	detailWait chan struct{}
	// restored marks a session rebuilt from the store after a restart; its
	// terminal job statuses come from the log, not the (never-run) service.
	// restoredJobsElided marks a listing too large to have been persisted.
	restored           bool
	restoredJobs       []batch.JobStatus
	restoredJobsElided bool
	// deleted marks a session already claimed by a Delete, so a concurrent
	// second Delete reports not-found instead of double-logging.
	deleted bool
	// gate is the manager's persist gate (see Manager.persistGate); it is
	// read-locked around every persist-then-apply step, never under s.mu.
	gate *sync.RWMutex
	// traceID is the request trace that created the session (empty when the
	// create arrived untraced); shard is the owning manager's index. Both
	// ride along so lifecycle spans and the final report can be correlated
	// with the edge request, including after a restore from the store.
	traceID string
	shard   int
	// unpersisted marks a session whose terminal state could not be
	// appended while the store was degraded; cleared once the recovery
	// compaction captures it.
	unpersisted bool
}

// SessionStatus is the wire form of a session for list/get responses.
type SessionStatus struct {
	ID            string          `json:"id"`
	Name          string          `json:"name,omitempty"`
	State         State           `json:"state"`
	JobsSubmitted int             `json:"jobs_submitted"`
	Config        SessionConfig   `json:"config"`
	Progress      *batch.Progress `json:"progress,omitempty"`
	Error         string          `json:"error,omitempty"`
	// Restored marks sessions recovered from the store at boot.
	Restored bool `json:"restored,omitempty"`
	// Unpersisted marks a session that finished while the store was
	// degraded; its terminal state lives only in memory until recovery.
	Unpersisted bool `json:"unpersisted,omitempty"`
	// TraceID is the request trace that created the session, when it came
	// through the traced HTTP edge (GET /api/trace/{id} retrieves the spans).
	TraceID string `json:"trace_id,omitempty"`
}

// ID returns the session's immutable identifier.
func (s *Session) ID() string { return s.id }

// Status returns a point-in-time snapshot of the session.
func (s *Session) Status() SessionStatus {
	if s.remote != nil {
		return s.remote.status()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStatus{
		ID:            s.id,
		Name:          s.name,
		State:         s.state,
		JobsSubmitted: s.submitted,
		Config:        s.cfg,
		Restored:      s.restored,
		Unpersisted:   s.unpersisted,
		TraceID:       s.traceID,
	}
	if s.state != StateCreated && s.hasSnap {
		p := s.snap.Progress
		st.Progress = &p
	}
	if s.runErr != nil {
		st.Error = s.runErr.Error()
	}
	return st
}

// validateBagRequest rejects malformed bag parameters before they reach
// workload.NewBag (which panics on out-of-range jitter).
func validateBagRequest(req BagRequest) (workload.App, error) {
	app, err := workload.ByName(req.App)
	if err != nil {
		return workload.App{}, err
	}
	if req.Jobs <= 0 {
		return workload.App{}, fmt.Errorf("jobs must be positive")
	}
	if req.Jitter < 0 || req.Jitter >= 1 {
		return workload.App{}, fmt.Errorf("jitter must be in [0, 1) (got %v)", req.Jitter)
	}
	if req.At < 0 {
		return workload.App{}, fmt.Errorf("at must be non-negative")
	}
	return app, nil
}

// rlockGate holds the manager's persist gate for a persist-then-apply
// step; the returned func releases it. It must be acquired before s.mu —
// the compactor holds the write side while capturing session state, so
// taking it under s.mu would deadlock (see Manager.persistGate).
func (s *Session) rlockGate() func() {
	if s.gate == nil {
		return func() {}
	}
	s.gate.RLock()
	return s.gate.RUnlock
}

// SubmitBag adds a bag of jobs; only valid before the session runs.
func (s *Session) SubmitBag(req BagRequest) (int, float64, error) {
	if s.remote != nil {
		return s.remote.submitBag(req)
	}
	app, err := validateBagRequest(req)
	if err != nil {
		return 0, 0, err
	}
	defer s.rlockGate()()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateCreated {
		return 0, 0, errf(http.StatusConflict, "session %s is %s; bags must be submitted before running", s.id, s.state)
	}
	bag := workload.NewBag(app, req.Jobs, req.Jitter, req.Seed)
	// Validate, persist, then apply: after a successful validation the
	// application step cannot fail, so the durable log and the in-memory
	// service never diverge (a failed log write leaves both untouched).
	if err := s.svc.ValidateBagAt(bag, req.At); err != nil {
		return 0, 0, err
	}
	if err := s.persist(kindBag, req); err != nil {
		return 0, 0, err
	}
	if err := s.svc.SubmitBagAt(bag, req.At); err != nil {
		return 0, 0, err // unreachable: ValidateBagAt covers every check
	}
	s.bags = append(s.bags, req)
	s.submitted += len(bag.Jobs)
	n, mean := len(bag.Jobs), bag.MeanRuntime()
	// The service copied the specs into its own job states; hand the spec
	// buffer back for the next submission.
	bag.Recycle()
	return n, mean, nil
}

// Estimate quotes a bag against the session's configuration without
// running anything.
func (s *Session) Estimate(req BagRequest) (batch.Estimate, error) {
	if s.remote != nil {
		return s.remote.estimate(req)
	}
	app, err := validateBagRequest(req)
	if err != nil {
		return batch.Estimate{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bag := workload.NewBag(app, req.Jobs, req.Jitter, req.Seed)
	est, err := s.svc.Estimate(bag)
	bag.Recycle()
	return est, err
}

// Report returns the final report; an apiError with 404 until the run
// completes.
func (s *Session) Report() (batch.Report, error) {
	if s.remote != nil {
		return s.remote.report()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateDone:
		return s.report, nil
	case StateFailed:
		return batch.Report{}, errf(http.StatusConflict, "session %s failed: %v", s.id, s.runErr)
	case StateCancelled:
		return batch.Report{}, errf(http.StatusConflict, "session %s was cancelled: %v", s.id, s.runErr)
	default:
		return batch.Report{}, errf(http.StatusNotFound, "session %s has no completed run", s.id)
	}
}

// detailRefreshTimeout bounds how long a mid-run /jobs or /vms request
// waits for the run loop's next detailed snapshot before serving whatever
// it has. One progress interval is normally milliseconds; the timeout only
// fires for sessions still queued on the worker pool or running with an
// enormous interval.
const detailRefreshTimeout = 2 * time.Second

// awaitDetail asks the run loop for a detailed snapshot and blocks (lock
// released) until one lands, the session ends, or the timeout passes. It
// must be called with s.mu held and returns with it re-held.
func (s *Session) awaitDetail() {
	s.wantDetail.Store(true)
	if s.detailWait == nil {
		s.detailWait = make(chan struct{})
	}
	wait, done := s.detailWait, s.done
	s.mu.Unlock()
	select {
	case <-wait:
	case <-done:
	case <-time.After(detailRefreshTimeout):
	}
	s.mu.Lock()
}

// Jobs returns per-job statuses. While the simulation is running they come
// from a detail refresh at the run loop's next progress interval (at most
// one interval old when served); for sessions restored from the store they
// come from the log.
func (s *Session) Jobs() ([]batch.JobStatus, error) {
	if s.remote != nil {
		return s.remote.jobs()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		// The backing service was recycled when the delete landed.
		return nil, errf(http.StatusNotFound, "no session %q", s.id)
	}
	if s.restored && s.state.terminal() && s.restoredJobsElided {
		return nil, errf(http.StatusGone,
			"session %s finished with a per-job listing too large to retain across restarts; its report and progress summary are still available", s.id)
	}
	if s.restored && s.state.terminal() && s.restoredJobs != nil {
		return append([]batch.JobStatus(nil), s.restoredJobs...), nil
	}
	if s.state == StateRunning {
		s.awaitDetail()
	}
	if s.state == StateRunning {
		if !s.hasSnap {
			// Still queued on the worker pool; the first snapshot lands
			// when the simulation actually starts.
			return []batch.JobStatus{}, nil
		}
		return append([]batch.JobStatus(nil), s.snap.Jobs...), nil
	}
	return s.svc.JobStatuses(), nil
}

// VMState describes one live VM for the API; it is the snapshot's VM form.
type VMState = batch.VMInfo

// VMs lists the session's live VMs. While the simulation is running the
// listing comes from a detail refresh at the run loop's next progress
// interval.
func (s *Session) VMs() ([]VMState, error) {
	if s.remote != nil {
		return s.remote.vms()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deleted {
		return nil, errf(http.StatusNotFound, "no session %q", s.id)
	}
	if s.restored && s.state.terminal() {
		// A terminal run has drained its cluster; nothing is live.
		return []VMState{}, nil
	}
	if s.state == StateRunning {
		s.awaitDetail()
	}
	if s.state == StateRunning {
		if !s.hasSnap {
			return []VMState{}, nil
		}
		return append([]VMState(nil), s.snap.VMs...), nil
	}
	return s.svc.VMInfos(), nil
}

// Wait blocks until the session's run finishes (it must have been started).
func (s *Session) Wait() {
	<-s.Done()
}

// Done returns a channel closed when the session reaches a terminal state
// (sessions restored from the store in a terminal state are born closed).
// For remote proxies the channel is fed by a long-poll watcher started on
// first use.
func (s *Session) Done() <-chan struct{} {
	if s.remote != nil {
		return s.remote.doneChan()
	}
	return s.done
}

// modelResolver resolves a model reference ("name", "name@latest",
// "name@vN") to a pinned version. The control-plane shard resolves against
// its own *registry.Registry; every other shard resolves against the
// read-only *registry.Replica the control plane replicates into, so the
// session create path never takes a cross-shard lock.
type modelResolver interface {
	Resolve(ref string) (registry.Resolved, error)
}

// Manager owns one shard's sessions and the bounded worker pool their runs
// execute on: its own session map, persist gate, store, and degraded-mode
// state, so shards share nothing on the session hot path. A single Manager
// is also a complete unsharded service (the Router with one shard is
// exactly this). Attaching a Store (see Restore) makes the session
// lifecycle durable across process restarts.
type Manager struct {
	models *modelCache
	// registry is the online model registry: versioned, provenance-carrying
	// models that sessions pin via SessionConfig.ModelRef and that learn
	// from ingested preemption observations (see models.go). In a sharded
	// deployment only the control-plane shard's registry holds entries;
	// the others resolve through their replica (see resolver).
	registry *registry.Registry
	// resolver is what session creation resolves ModelRefs against: the
	// manager's own registry by default, a registry.Replica on non-control
	// shards of a Router.
	resolver modelResolver
	// replica is set on remote executor shards (see NewShardManager): the
	// replication-fed registry view the resolver points at, persisted as
	// kindReplica records so restarts warm-start resolution.
	replica *registry.Replica
	// shard is this manager's index within its Router (0 for a standalone
	// manager), used for logs and the per-shard stats payload.
	shard int
	sem   chan struct{}

	// persistGate serializes persists against online compaction. Every
	// persist-then-apply step read-locks it at its entry point — before
	// s.mu, m.mu, or the registry lock — and the compactor write-locks it
	// while capturing live state and rewriting the snapshot, so no
	// acknowledged append can fall between the capture and the WAL
	// truncation. It is never held across a blocking wait.
	persistGate sync.RWMutex

	mu       sync.Mutex
	seq      int
	sessions map[string]*Session
	order    []string
	// store is what sessions persist through: the raw store until Restore
	// attaches one, then the degraded-mode guard around it (innerStore
	// keeps the unguarded handle for recovery and compaction).
	store      Store
	innerStore Store
	// refitInFlight tracks entries with a background auto-refit running,
	// so repeated refit-ready ingests launch at most one worker.
	refitInFlight map[string]bool
	wg            sync.WaitGroup

	// Degraded-mode state (see degraded.go).
	degraded       bool
	degradedReason string
	degradedSince  time.Time
	probing        bool
	unpersisted    map[string]bool
	probeEvery     time.Duration

	// Admission control: maxSessions bounds live sessions (0 = unbounded);
	// queueDepth bounds runs queued beyond the worker pool (0 = unbounded);
	// inflightRuns counts admitted, unfinished runs.
	maxSessions  int
	queueDepth   int
	inflightRuns int

	// Background workers (online compaction, degraded probe).
	compactCh chan struct{}
	stopCh    chan struct{}
	closeOnce sync.Once
	maintWG   sync.WaitGroup

	// met holds the shard-labeled metric series the session lifecycle
	// increments; rebound by obsInit whenever the shard index changes.
	met *serveMetrics

	// Test seams: runHook substitutes for svc.Run in the session worker,
	// refitHook for the auto-refit body. Set before serving traffic.
	runHook   func(ctx context.Context, svc *batch.Service) (batch.Report, error)
	refitHook func(name string) error
}

// NewManager returns a manager whose worker pool runs up to parallelism
// session simulations concurrently (default GOMAXPROCS).
func NewManager(parallelism int) *Manager {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	m := &Manager{
		models:        newModelCache(),
		registry:      registry.New(),
		sem:           make(chan struct{}, parallelism),
		sessions:      make(map[string]*Session),
		refitInFlight: make(map[string]bool),
		unpersisted:   make(map[string]bool),
		probeEvery:    time.Second,
		compactCh:     make(chan struct{}, 1),
		stopCh:        make(chan struct{}),
	}
	m.resolver = m.registry
	m.obsInit()
	return m
}

// SetMaxSessions bounds how many live (undeleted) sessions the manager
// admits; further creates get 429. 0 means unbounded. Call before serving.
func (m *Manager) SetMaxSessions(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxSessions = n
}

// SetQueueDepth bounds how many admitted runs may wait for a worker slot
// beyond the pool's parallelism; further runs get 429 with Retry-After.
// 0 means unbounded. Call before serving.
func (m *Manager) SetQueueDepth(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth = n
}

// Create validates the config, builds the session's service (fitting or
// fetching models through the cache), and registers it.
func (m *Manager) Create(name string, cfg SessionConfig) (*Session, error) {
	return m.CreateCtx(context.Background(), name, cfg)
}

// ctxErr maps a request context's cancellation to an apiError: 408 for a
// deadline the client set, so abandoned requests don't burn a model fit.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return errf(http.StatusRequestTimeout, "request abandoned: %v", err)
	}
	return nil
}

// CreateCtx is Create honoring a request-scoped context: the deadline is
// checked before the expensive model build and before the durable append.
func (m *Manager) CreateCtx(ctx context.Context, name string, cfg SessionConfig) (*Session, error) {
	return m.createSession(ctx, "", name, cfg)
}

// createSession builds and registers a session. With id == "" the manager
// mints the next id from its own sequence (the standalone path); a Router
// instead mints globally-sequential ids on its control plane and passes
// them in, and the owning shard adopts the id into its sequence so each
// shard's durable seq record preserves the global high-water mark.
func (m *Manager) createSession(ctx context.Context, id, name string, cfg SessionConfig) (*Session, error) {
	traceID := obs.TraceID(ctx)
	start := time.Now()
	if err := m.admitSession(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if cfg.ModelRef != "" {
		// Resolve the reference once, now, and pin the config to the
		// concrete version it named: "name@latest" becomes "name@vN" in
		// the session's status and durable record, so refits published
		// after this moment never change what this session simulates.
		res, err := m.resolver.Resolve(cfg.ModelRef)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "model_ref: %v", err)
		}
		cfg.ModelRef = res.Pinned
	}
	bcfg, err := cfg.build(m.models, m.resolver)
	if err != nil {
		return nil, err
	}
	svc, err := batch.New(bcfg)
	if err != nil {
		return nil, err
	}
	svc.ProgressEvery = cfg.ProgressEvery
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if id == "" {
		m.seq++
		id = ids.Padded("s-", m.seq, 3)
	} else {
		var n int
		if _, err := fmt.Sscanf(id, "s-%d", &n); err == nil && n > m.seq {
			m.seq = n
		}
	}
	st := m.store
	m.mu.Unlock()
	s := &Session{
		id:      id,
		name:    name,
		cfg:     cfg,
		state:   StateCreated,
		svc:     svc,
		store:   st,
		gate:    &m.persistGate,
		done:    make(chan struct{}),
		traceID: traceID,
		shard:   m.shard,
	}
	// The durable append (an fsync) runs outside the manager lock: the
	// session is not yet published, so nothing can observe it, and a failed
	// append leaves only a gap in the id sequence. The persist gate spans
	// the append and the registration so an online compaction cannot land
	// between them and truncate the acknowledged create away.
	defer s.rlockGate()()
	// Recheck the bound now that the expensive build is done: concurrent
	// creates may have filled the remaining slots.
	if err := m.admitSession(); err != nil {
		return nil, err
	}
	if err := s.persist(kindCreate, createRecord{Name: name, Config: cfg, TraceID: traceID}); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.sessions[s.id] = s
	m.order = append(m.order, s.id)
	m.mu.Unlock()
	m.met.created.Inc()
	m.met.scenarios[cfg.Policy].Inc()
	obs.DefaultTracer().Emit(obs.Span{
		TraceID:    traceID,
		Component:  "shard",
		Name:       "session.create",
		Shard:      m.shard,
		Session:    s.id,
		Start:      start,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
	return s, nil
}

// admitSession enforces the max-sessions bound.
func (m *Manager) admitSession() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		return &apiError{
			code: http.StatusTooManyRequests, retryAfter: degradedRetryAfter,
			err: fmt.Errorf("session limit reached (%d live sessions); delete one or retry later", len(m.sessions)),
		}
	}
	return nil
}

// Get returns the session with the given id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, errf(http.StatusNotFound, "no session %q", id)
	}
	return s, nil
}

// List returns all sessions in creation order.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.sessions[id])
	}
	return out
}

// Cancel aborts a running session: the context threaded through the
// simulation's event loop is cancelled, the run stops within one progress
// interval, the partial report is discarded, and the session lands in the
// cancelled state. Cancel blocks until the worker slot has been freed.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return errf(http.StatusNotFound, "no session %q", id)
	}
	s.mu.Lock()
	if s.state != StateRunning {
		state := s.state
		s.mu.Unlock()
		return errf(http.StatusConflict, "session %s is %s, not running", id, state)
	}
	cancel := s.cancel
	s.mu.Unlock()
	cancel()
	<-s.done
	return nil
}

// Delete removes a session. A running session is first cancelled (see
// Cancel), so Delete returns within one progress interval with the worker
// slot freed.
func (m *Manager) Delete(id string) error {
	for {
		m.mu.Lock()
		s, ok := m.sessions[id]
		m.mu.Unlock()
		if !ok {
			return errf(http.StatusNotFound, "no session %q", id)
		}
		// The persist gate is taken per attempt, released before the wait
		// on a running session's end: holding a read lock across <-s.done
		// would deadlock with a pending compaction (its queued write lock
		// blocks the run goroutine's terminal persist from acquiring the
		// read side, so the session could never finish).
		unlock := s.rlockGate()
		s.mu.Lock()
		if s.state == StateRunning {
			cancel := s.cancel
			s.mu.Unlock()
			unlock()
			cancel()
			<-s.done
			continue // now terminal; loop around to remove it
		}
		if s.deleted {
			s.mu.Unlock()
			unlock()
			return errf(http.StatusNotFound, "no session %q", id)
		}
		// Persist the delete before applying it (the fsync happens under
		// the session lock only — the manager stays responsive), then mark
		// never-run sessions cancelled: they have no run goroutine to close
		// done, and Wait callers and event streams must observe the end
		// rather than hang on an unregistered session.
		if err := s.persist(kindDelete, nil); err != nil {
			s.mu.Unlock()
			unlock()
			return err
		}
		s.deleted = true
		if !s.state.terminal() {
			s.state = StateCancelled
			s.runErr = fmt.Errorf("session %s deleted before running", id)
			close(s.done)
		}
		// Hand the session's job-state blocks back to the batch arena. The
		// deleted flag is already set under the same lock, so every later
		// accessor (Jobs, VMs) 404s before touching the recycled service,
		// and the compactor skips deleted sessions entirely.
		if s.svc != nil {
			s.svc.Recycle()
		}
		s.mu.Unlock()
		unlock()
		// A deleted session is terminal, so Run can no longer start it; the
		// map removal needs no coordination with the session lock.
		m.mu.Lock()
		if m.sessions[id] == s {
			delete(m.sessions, id)
			for i, oid := range m.order {
				if oid == id {
					m.order = append(m.order[:i:i], m.order[i+1:]...)
					break
				}
			}
		}
		m.mu.Unlock()
		return nil
	}
}

// Run starts the session's simulation asynchronously on the worker pool.
// It returns immediately; poll the session's status, stream its events, or
// Wait on it.
func (m *Manager) Run(s *Session) error {
	if err := m.admitRun(); err != nil {
		return err
	}
	// The created->running transition is guarded by the session lock alone:
	// a concurrent DELETE marks the session cancelled (terminal) under the
	// same lock before unregistering it, so whichever side wins the lock,
	// Run can never start a session that was just deleted, and Delete can
	// never silently drop one that just started. The fsynced run record is
	// written under the session lock only — the manager stays responsive.
	unlock := s.rlockGate()
	s.mu.Lock()
	if err := func() error {
		switch s.state {
		case StateRunning:
			return errf(http.StatusConflict, "session %s is already running", s.id)
		case StateDone, StateFailed, StateCancelled:
			return errf(http.StatusConflict, "session %s already ran or was removed", s.id)
		}
		if s.submitted == 0 {
			return errf(http.StatusBadRequest, "session %s has no bags submitted", s.id)
		}
		return s.persist(kindRun, nil)
	}(); err != nil {
		s.mu.Unlock()
		unlock()
		m.releaseRun()
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.state = StateRunning
	s.cancel = cancel
	svc := s.svc
	s.mu.Unlock()
	unlock()

	svc.OnSnapshot = s.publishSnapshot
	svc.SnapshotDetail = func() bool { return s.wantDetail.Swap(false) }
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer m.releaseRun()
		defer cancel()
		start := time.Now()
		var rep batch.Report
		var err error
		select {
		case m.sem <- struct{}{}:
			if s.traceID != "" {
				// The wait for a worker slot, as its own span: queueing
				// delay is the first thing to look for in a slow trace.
				obs.DefaultTracer().Emit(obs.Span{
					TraceID: s.traceID, Component: "shard", Name: "session.queued",
					Shard: m.shard, Session: s.id, Start: start,
					DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
				})
			}
			rep, err = m.runSession(ctx, svc)
		case <-ctx.Done():
			// Cancelled while still queued for a worker slot: nothing ran.
			err = fmt.Errorf("batch: run cancelled while queued: %w", ctx.Err())
		}
		s.mu.Lock()
		switch {
		case err == nil:
			s.state = StateDone
			// Stamp the report with the create trace before publishing, so
			// the persisted done record (and a restart's replay) carry it.
			rep.TraceID = s.traceID
			s.report = rep
		case errors.Is(err, context.Canceled):
			s.state = StateCancelled
			s.runErr = err
		default:
			s.state = StateFailed
			s.runErr = err
		}
		state := s.state
		s.mu.Unlock()
		m.met.terminal[state].Inc()
		if s.traceID != "" {
			obs.DefaultTracer().Emit(obs.Span{
				TraceID: s.traceID, Component: "shard", Name: "session.run",
				Shard: m.shard, Session: s.id, Detail: string(state), Start: start,
				DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
			})
		}
		// The run goroutine owns svc again now that Run has returned, so
		// reading final job statuses for the durable record is safe.
		m.persistTerminal(s, svc)
		close(s.done)
	}()
	return nil
}

// runSession executes one simulation on an acquired worker slot, isolating
// panics: a panicking run frees its slot and surfaces as a failed session
// with the stack in the diagnostic, not a dead process.
func (m *Manager) runSession(ctx context.Context, svc *batch.Service) (rep batch.Report, err error) {
	defer func() {
		<-m.sem
		if p := recover(); p != nil {
			err = fmt.Errorf("batch: session run panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if m.runHook != nil {
		return m.runHook(ctx, svc)
	}
	return svc.Run(ctx)
}

// admitRun admits one run into the pool's queue, bounding queued runs at
// queueDepth beyond the pool's parallelism; saturation gets 429 with
// Retry-After rather than an unbounded goroutine pile-up.
func (m *Manager) admitRun() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.queueDepth > 0 && m.inflightRuns >= cap(m.sem)+m.queueDepth {
		return &apiError{
			code: http.StatusTooManyRequests, retryAfter: degradedRetryAfter,
			err: fmt.Errorf("run queue is full (%d running or queued); retry later", m.inflightRuns),
		}
	}
	m.inflightRuns++
	return nil
}

func (m *Manager) releaseRun() {
	m.mu.Lock()
	m.inflightRuns--
	m.mu.Unlock()
}

// publishSnapshot installs the latest snapshot and fans its progress out to
// subscribers. It is the batch.Service's OnSnapshot callback, invoked from
// the run goroutine.
func (s *Session) publishSnapshot(snap batch.Snapshot) {
	s.mu.Lock()
	if snap.Jobs == nil {
		// A progress-only snapshot: keep the last detailed listings (the
		// initial and final snapshots always carry them).
		snap.Jobs, snap.VMs = s.snap.Jobs, s.snap.VMs
	} else if s.detailWait != nil {
		// A detailed snapshot: release any /jobs or /vms request waiting
		// on the refresh.
		close(s.detailWait)
		s.detailWait = nil
	}
	s.snap = snap
	s.hasSnap = true
	chans := make([]chan batch.Progress, 0, len(s.subs))
	for ch := range s.subs {
		chans = append(chans, ch)
	}
	s.mu.Unlock()
	for _, ch := range chans {
		offerLatest(ch, snap.Progress)
	}
}

// Wait blocks until every started run has finished; used for graceful
// shutdown and by tests.
func (m *Manager) Wait() {
	m.wg.Wait()
}

// Stats summarizes the manager for GET /api/stats.
type Stats struct {
	Sessions map[State]int `json:"sessions"`
}

// Stats returns per-state session counts, with deterministic map contents
// (states with zero sessions are included).
func (m *Manager) Stats() Stats {
	st := Stats{Sessions: map[State]int{
		StateCreated: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}}
	for _, s := range m.List() {
		s.mu.Lock()
		st.Sessions[s.state]++
		s.mu.Unlock()
	}
	return st
}
