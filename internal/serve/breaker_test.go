package serve

import (
	"testing"
	"time"
)

// Breaker unit tests: the closed -> open -> half-open -> closed/open walk,
// independent of any transport.

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.failure()
		if got := b.State(); got != breakerClosed {
			t.Fatalf("after %d failures state = %s, want closed", i+1, got)
		}
	}
	b.failure()
	if got := b.State(); got != breakerOpen {
		t.Fatalf("after threshold failures state = %s, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreaker(3, time.Hour)
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state = %s after interleaved successes; the streak must be consecutive", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	b.failure()
	if got := b.State(); got != breakerOpen {
		t.Fatalf("state = %s, want open", got)
	}
	time.Sleep(15 * time.Millisecond)
	if got := b.State(); got != breakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", got)
	}
	if !b.allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	// Exactly one probe: a second concurrent call is rejected while the
	// first is in flight.
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe failure reopens immediately for another cooldown.
	b.failure()
	if got := b.State(); got != breakerOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	if b.allow() {
		t.Fatal("reopened breaker admitted a call before its new cooldown")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the second probe after its cooldown")
	}
	b.success()
	if got := b.State(); got != breakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused a call")
	}
}
