package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

func sweepBody() map[string]any {
	return map[string]any{
		"vm_types": []string{"n1-highcpu-16", "n1-highcpu-32"},
		"zones":    []string{"us-east1-b"},
		"policies": []string{PolicyReuse, PolicyOnDemand},
		"vms":      8,
		"seed":     9,
		"model":    map[string]any{"a": 0.45, "tau1": 1.0, "tau2": 0.8, "b": 24, "l": 24},
		"bag":      map[string]any{"app": "nanoconfinement", "jobs": 16, "seed": 2},
	}
}

// TestSweepGridAggregation runs the acceptance grid: 2 VM types x 1 zone x
// 2 policies = 4 cells, aggregated into one comparison report.
func TestSweepGridAggregation(t *testing.T) {
	h := NewAPI(NewManager(4)).Handler()
	rec, _ := doJSON(t, h, "POST", "/api/sweep", sweepBody())
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep: %d %s", rec.Code, rec.Body)
	}
	var rep SweepReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(rep.Cells))
	}
	// Grid order: vm_types outermost, policies innermost.
	wantOrder := []struct{ vt, pol string }{
		{"n1-highcpu-16", PolicyReuse},
		{"n1-highcpu-16", PolicyOnDemand},
		{"n1-highcpu-32", PolicyReuse},
		{"n1-highcpu-32", PolicyOnDemand},
	}
	for i, w := range wantOrder {
		c := rep.Cells[i]
		if c.VMType != w.vt || c.Policy != w.pol {
			t.Fatalf("cell %d = %s/%s, want %s/%s", i, c.VMType, c.Policy, w.vt, w.pol)
		}
		if c.Error != "" {
			t.Fatalf("cell %d failed: %s", i, c.Error)
		}
		if c.Report == nil || c.Report.JobsCompleted != 16 {
			t.Fatalf("cell %d report: %+v", i, c.Report)
		}
	}
	if rep.Cheapest == "" || rep.Fastest == "" {
		t.Fatalf("aggregation missing best cells: %+v", rep)
	}
	// On preemptible VMs the reuse policy must be cheaper per job than the
	// on-demand deployment of the same type (the Figure 9a contrast).
	if rep.Cells[0].Report.CostPerJob >= rep.Cells[1].Report.CostPerJob {
		t.Fatalf("preemptible reuse ($%v/job) not cheaper than on-demand ($%v/job)",
			rep.Cells[0].Report.CostPerJob, rep.Cells[1].Report.CostPerJob)
	}
	// The sweep's sessions remain inspectable.
	s, err := NewAPI(NewManager(1)).b.Get("s-001")
	if err == nil {
		t.Fatalf("fresh manager unexpectedly has sessions: %v", s.ID())
	}
}

// TestSweepOrderStable runs the same sweep twice (cells execute in
// whatever order the pool schedules) and demands byte-identical
// aggregation, modulo session ids which increment across sweeps.
func TestSweepOrderStable(t *testing.T) {
	run := func(parallelism int) []SweepCell {
		mgr := NewManager(parallelism)
		var req SweepRequest
		b, _ := json.Marshal(sweepBody())
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatal(err)
		}
		rep, err := mgr.Sweep(req)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Cells {
			rep.Cells[i].SessionID = "" // ids depend on manager history
		}
		return rep.Cells
	}
	a := run(4)
	b := run(1)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("sweep aggregation not order-stable:\n%s\n%s", aj, bj)
	}
}

// TestSweepValidation exercises the error paths.
func TestSweepValidation(t *testing.T) {
	h := NewAPI(NewManager(1)).Handler()

	rec, out := doJSON(t, h, "POST", "/api/sweep", map[string]any{
		"vms": 4, "bag": map[string]any{"app": "shapes", "jobs": 1},
	})
	if rec.Code != http.StatusBadRequest || out["error"] == nil {
		t.Fatalf("empty grid: %d %s", rec.Code, rec.Body)
	}

	// A cell-level failure (unknown policy) is reported in the cell, not as
	// a request failure, and other cells still run.
	body := sweepBody()
	body["policies"] = []string{PolicyOnDemand, "warp-drive"}
	body["vm_types"] = []string{"n1-highcpu-16"}
	rec, _ = doJSON(t, h, "POST", "/api/sweep", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("sweep with bad cell: %d %s", rec.Code, rec.Body)
	}
	var rep SweepReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || rep.Cells[1].Error == "" || rep.Cells[0].Error != "" {
		t.Fatalf("cells: %+v", rep.Cells)
	}
	if rep.Cells[0].Report == nil {
		t.Fatal("good cell missing report")
	}
}
