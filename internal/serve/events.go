package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/batch"
)

// This file implements the session event stream: subscribers receive the
// progress snapshots a running simulation publishes, with latest-wins
// semantics (a slow consumer sees fewer, fresher snapshots, never a
// backlog), and the HTTP layer exposes them as Server-Sent Events so
// clients replace status busy-polling with one long-lived GET.

// Subscribe registers a progress listener on the session. The returned
// channel (buffer 1, latest-wins) receives a batch.Progress per published
// snapshot; the returned func unsubscribes (it is idempotent and must be
// called to release the subscription). Waiting on Done alongside the
// channel tells the consumer when the stream is over.
func (s *Session) Subscribe() (<-chan batch.Progress, func()) {
	if s.remote != nil {
		// A proxy subscribes by opening the shard's own SSE stream and
		// relaying its frames with the same latest-wins semantics.
		return s.remote.subscribe()
	}
	ch := make(chan batch.Progress, 1)
	s.mu.Lock()
	if s.subs == nil {
		// Lazily created: most sessions (and every benchmark session) never
		// attach an event stream.
		s.subs = make(map[chan batch.Progress]struct{})
	}
	s.subs[ch] = struct{}{}
	// Seed the channel so a subscriber joining mid-run (or after the run)
	// sees the latest state immediately instead of waiting a full interval.
	if s.hasSnap {
		ch <- s.snap.Progress
	}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}
}

// offerLatest delivers p without ever blocking the publisher: if the
// subscriber has not consumed the previous snapshot it is replaced. The
// single publisher (the run goroutine) makes the drain-then-send safe from
// races with other senders; a concurrent receive only makes room.
func offerLatest(ch chan batch.Progress, p batch.Progress) {
	select {
	case ch <- p:
		return
	default:
	}
	select {
	case <-ch:
	default:
	}
	select {
	case ch <- p:
	default:
	}
}

// writeSSE emits one Server-Sent Event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// handleEvents is GET /api/sessions/{id}/events: an SSE stream. The client
// first receives a `state` event with the session's current status, then a
// `progress` event per published snapshot while the simulation runs, and
// finally a closing `state` event once the session reaches a terminal state
// (immediately, for sessions already terminal). Disconnecting the request
// tears the subscription down.
func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	s := a.session(w, r)
	if s == nil {
		return
	}
	rc := http.NewResponseController(w)
	ch, unsubscribe := s.Subscribe()
	defer unsubscribe()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if writeSSE(w, "state", s.Status()) != nil {
		return
	}
	if err := rc.Flush(); err != nil {
		// The connection cannot stream (no Flush support); nothing more to
		// deliver incrementally.
		return
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case p := <-ch:
			if writeSSE(w, "progress", p) != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		case <-s.Done():
			// Drain any snapshot published just before the terminal
			// transition, then close with the final state.
			select {
			case p := <-ch:
				if writeSSE(w, "progress", p) != nil {
					return
				}
			default:
			}
			_ = writeSSE(w, "state", s.Status())
			_ = rc.Flush()
			return
		}
	}
}

// handleCancel is POST /api/sessions/{id}/cancel: aborts a running session
// (409 otherwise) and reports the resulting state. The call returns once
// the run has stopped and its worker slot is free — within one progress
// interval.
func (a *API) handleCancel(w http.ResponseWriter, r *http.Request) {
	// Resolve the session before cancelling: a concurrent DELETE could
	// remove it from the manager right after Cancel succeeds, and a 404
	// then would misreport a cancel that actually took effect.
	s := a.session(w, r)
	if s == nil {
		return
	}
	if err := a.b.Cancel(s.ID()); err != nil {
		writeErr(w, httpCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, s.Status())
}
