package serve

import (
	"encoding/json"
	"testing"

	"repro/internal/store"
)

// openStore opens a store.Log in dir, failing the test on error.
func openStore(t *testing.T, dir string) *store.Log {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestRestartRoundTrip is the headline persistence guarantee: run a mix of
// sessions through a stored manager, reopen a fresh manager on the same
// directory, and require byte-identical statuses, reports, and job
// listings.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(2)
	st1 := openStore(t, dir)
	if err := m1.Restore(st1); err != nil {
		t.Fatal(err)
	}

	// Session 1: runs to completion. Session 2: checkpointing, also runs.
	// Session 3: created with a bag but never run. Session 4: created and
	// deleted — must not reappear.
	mkRun := func(cfg SessionConfig, jobs int) *Session {
		s, err := m1.Create("", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.SubmitBag(BagRequest{App: "shapes", Jobs: jobs, Jitter: 0.02, Seed: 3}); err != nil {
			t.Fatal(err)
		}
		if err := m1.Run(s); err != nil {
			t.Fatal(err)
		}
		s.Wait()
		return s
	}
	s1 := mkRun(testConfig(1), 12)
	s2 := mkRun(ckptConfig(2), 8)
	s3, err := m1.Create("parked", testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s3.SubmitBag(BagRequest{App: "nanoconfinement", Jobs: 5, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	s4, err := m1.Create("doomed", testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Delete(s4.ID()); err != nil {
		t.Fatal(err)
	}

	marshal := func(v any) string {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	type snapshot struct{ status, report, jobs string }
	want := map[string]snapshot{}
	for _, s := range []*Session{s1, s2} {
		rep, err := s.Report()
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := s.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		st := s.Status()
		st.Restored = false // the restored flag is the one allowed difference
		want[s.ID()] = snapshot{status: marshal(st), report: marshal(rep), jobs: marshal(jobs)}
	}

	// "Restart": a brand-new manager over the same directory (the first
	// store must release its directory lock, as a dead process would).
	st1.Close()
	m2 := NewManager(2)
	if err := m2.Restore(openStore(t, dir)); err != nil {
		t.Fatal(err)
	}
	sessions := m2.List()
	if len(sessions) != 3 {
		ids := []string{}
		for _, s := range sessions {
			ids = append(ids, s.ID())
		}
		t.Fatalf("restored %d sessions (%v), want 3", len(sessions), ids)
	}
	for id, w := range want {
		s, err := m2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		st := s.Status()
		if !st.Restored {
			t.Fatalf("session %s not marked restored", id)
		}
		st.Restored = false
		if got := marshal(st); got != w.status {
			t.Fatalf("session %s status diverged:\n before: %s\n after:  %s", id, w.status, got)
		}
		rep, err := s.Report()
		if err != nil {
			t.Fatal(err)
		}
		if got := marshal(rep); got != w.report {
			t.Fatalf("session %s report not byte-identical:\n before: %s\n after:  %s", id, w.report, got)
		}
		jobs, err := s.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if got := marshal(jobs); got != w.jobs {
			t.Fatalf("session %s jobs diverged:\n before: %s\n after:  %s", id, w.jobs, got)
		}
	}

	// The parked session came back runnable: same id, created state, bag
	// intact — running it now must succeed.
	p, err := m2.Get(s3.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Status(); st.State != StateCreated || st.JobsSubmitted != 5 || st.Name != "parked" {
		t.Fatalf("parked session restored as %+v", st)
	}
	if err := m2.Run(p); err != nil {
		t.Fatal(err)
	}
	p.Wait()
	if _, err := p.Report(); err != nil {
		t.Fatalf("restored session failed to run: %v", err)
	}
	// The deleted session stayed deleted.
	if _, err := m2.Get(s4.ID()); err == nil {
		t.Fatal("deleted session reappeared after restart")
	}
	// New sessions must not collide with restored ids.
	s5, err := m2.Create("", testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if s5.ID() == s1.ID() || s5.ID() == s2.ID() || s5.ID() == s3.ID() || s5.ID() == s4.ID() {
		t.Fatalf("id collision after restart: %s", s5.ID())
	}
}

// TestCrashWhileRunningRecoversAsFailed simulates a kill -9 between the
// run record and any terminal record: on restore the session must surface
// as failed with a diagnostic, not as created or silently done.
func TestCrashWhileRunningRecoversAsFailed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	cfg := testConfig(1).withDefaults()
	if _, err := st.Append("create", "s-001", createRecord{Name: "crashed", Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("bag", "s-001", BagRequest{App: "shapes", Jobs: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append("run", "s-001", nil); err != nil {
		t.Fatal(err)
	}
	// No terminal record: the process died mid-run. Reopen the store (the
	// "restart") so the records are replayed.
	st.Close()

	m := NewManager(1)
	st2 := openStore(t, dir)
	if err := m.Restore(st2); err != nil {
		t.Fatal(err)
	}
	s, err := m.Get("s-001")
	if err != nil {
		t.Fatal(err)
	}
	status := s.Status()
	if status.State != StateFailed {
		t.Fatalf("state = %s, want failed", status.State)
	}
	if status.Error == "" {
		t.Fatal("crashed session recovered without a diagnostic")
	}
	// Terminal: report conflicts, rerun conflicts, Done is closed.
	if _, err := s.Report(); err == nil {
		t.Fatal("crashed session served a report")
	}
	if err := m.Run(s); err == nil {
		t.Fatal("crashed session was runnable")
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("restored terminal session's Done channel is open")
	}

	// The recovery is itself durable: a second restart (whose boot-time
	// compaction rewrote the snapshot) sees the same failed state.
	st2.Close()
	m2 := NewManager(1)
	if err := m2.Restore(openStore(t, dir)); err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Get("s-001")
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Status().State; got != StateFailed {
		t.Fatalf("second restart state = %s, want failed", got)
	}
}

// TestCancelledStatePersists cancels a running session, restarts, and
// expects the cancelled state (with its diagnostic) to survive.
func TestCancelledStatePersists(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(1)
	st1 := openStore(t, dir)
	if err := m1.Restore(st1); err != nil {
		t.Fatal(err)
	}
	s := startSlowSession(t, m1, slowSessionJobs)
	waitForProgress(t, s)
	if err := m1.Cancel(s.ID()); err != nil {
		t.Fatal(err)
	}
	if got := s.Status().State; got != StateCancelled {
		t.Fatalf("state after cancel = %s", got)
	}

	st1.Close()
	m2 := NewManager(1)
	if err := m2.Restore(openStore(t, dir)); err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Get(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	status := s2.Status()
	if status.State != StateCancelled {
		t.Fatalf("restored state = %s, want cancelled", status.State)
	}
	if status.Error == "" {
		t.Fatal("restored cancelled session lost its diagnostic")
	}
}

// TestDeletedSessionIDNeverReused covers the compaction edge: a deleted
// session's create record is erased by the boot-time compaction, but its
// id must still never be minted again on later boots.
func TestDeletedSessionIDNeverReused(t *testing.T) {
	dir := t.TempDir()

	m1 := NewManager(1)
	st1 := openStore(t, dir)
	if err := m1.Restore(st1); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Create("keep", testConfig(1)); err != nil {
		t.Fatal(err)
	}
	s2, err := m1.Create("drop", testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Delete(s2.ID()); err != nil {
		t.Fatal(err)
	}
	st1.Close()

	// Boot 2 compacts away the deleted session's history...
	m2 := NewManager(1)
	st2 := openStore(t, dir)
	if err := m2.Restore(st2); err != nil {
		t.Fatal(err)
	}
	st2.Close()

	// ...and boot 3 must still not reuse its id.
	m3 := NewManager(1)
	if err := m3.Restore(openStore(t, dir)); err != nil {
		t.Fatal(err)
	}
	s3, err := m3.Create("fresh", testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if s3.ID() == s2.ID() {
		t.Fatalf("deleted session id %s was reused after compaction", s2.ID())
	}
}
