package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/ids"
	"repro/internal/placement"
	"repro/internal/registry"
	"repro/internal/store"
)

// Sharding tests: the Router must be observationally identical to a single
// Manager — same ids, same listing order, byte-identical reports — while
// splitting sessions, stores, and faults across shards.

// runFleet creates, loads, and runs n sessions through a backend and
// returns each session's marshaled report keyed by id.
func runFleet(t *testing.T, b Backend, n int) map[string]string {
	t.Helper()
	for i := 1; i <= n; i++ {
		s, err := b.CreateCtx(context.Background(), fmt.Sprintf("w-%d", i), testConfig(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.SubmitBag(BagRequest{App: "shapes", Jobs: 6 + i, Jitter: 0.01, Seed: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := b.Run(s); err != nil {
			t.Fatal(err)
		}
	}
	out := make(map[string]string, n)
	for _, s := range b.List() {
		s.Wait()
		rep, err := s.Report()
		if err != nil {
			t.Fatalf("session %s: %v", s.ID(), err)
		}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		out[s.ID()] = string(raw)
	}
	return out
}

// TestShardedReportsByteIdentical is the tentpole equivalence gate: the
// same create sequence produces the same ids and byte-identical reports on
// a bare Manager, a single-shard Router, and a four-shard Router.
func TestShardedReportsByteIdentical(t *testing.T) {
	const n = 6
	baseline := runFleet(t, NewManager(2), n)
	single := runFleet(t, NewRouter(1, 2), n)
	quad := runFleet(t, NewRouter(4, 2), n)

	if len(baseline) != n || len(single) != n || len(quad) != n {
		t.Fatalf("fleet sizes diverge: manager %d, shards=1 %d, shards=4 %d",
			len(baseline), len(single), len(quad))
	}
	for id, want := range baseline {
		if got := single[id]; got != want {
			t.Errorf("session %s: shards=1 report differs from manager:\n  %s\nvs\n  %s", id, got, want)
		}
		if got := quad[id]; got != want {
			t.Errorf("session %s: shards=4 report differs from manager:\n  %s\nvs\n  %s", id, got, want)
		}
	}
}

// TestRouterListOrder checks scatter-gather listing merges back into global
// creation order regardless of which shard owns which session.
func TestRouterListOrder(t *testing.T) {
	r := NewRouter(4, 2)
	for i := 1; i <= 8; i++ {
		if _, err := r.Create("", testConfig(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	list := r.List()
	if len(list) != 8 {
		t.Fatalf("listed %d sessions, want 8", len(list))
	}
	homes := make(map[int]bool)
	for i, s := range list {
		if want := ids.Padded("s-", i+1, 3); s.ID() != want {
			t.Fatalf("list[%d] = %s, want %s", i, s.ID(), want)
		}
		homes[placement.Shard(s.ID(), 4)] = true
	}
	if len(homes) < 2 {
		t.Fatalf("all 8 sessions landed on %d shard(s); placement is not spreading", len(homes))
	}
	// Routed lookups agree with placement: the owner has it, nobody else.
	for _, s := range list {
		home := placement.Shard(s.ID(), 4)
		for i := 0; i < 4; i++ {
			_, err := r.Shard(i).Get(s.ID())
			if (err == nil) != (i == home) {
				t.Fatalf("shard %d Get(%s) err=%v; home is %d", i, s.ID(), err, home)
			}
		}
	}
}

// openShardStores opens (creating if needed) one store per shard dir.
func openShardStores(t *testing.T, root string, n int) []Store {
	t.Helper()
	stores := make([]Store, n)
	for i := range stores {
		dir := store.ShardDir(root, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	return stores
}

func closeStores(t *testing.T, stores []Store) {
	t.Helper()
	for _, st := range stores {
		if err := st.(*store.Log).Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRouterRestoreAcrossShardCounts boots the same data dir at 1, then 4,
// then back to 1 shard: every session survives each transition, lands on
// its hash-placed home store, and the drained extra stores keep only the
// id high-water mark.
func TestRouterRestoreAcrossShardCounts(t *testing.T) {
	root := t.TempDir()

	// Boot 1: single shard, eight completed sessions.
	r1 := NewRouter(1, 2)
	st1 := openShardStores(t, root, 1)
	if err := r1.Restore(st1); err != nil {
		t.Fatal(err)
	}
	want := runFleet(t, r1, 8)
	r1.Close()
	closeStores(t, st1)

	// Boot 2: four shards. Sessions re-home by hash; reports must be intact
	// and each shard's store must hold exactly its owned sessions.
	r4 := NewRouter(4, 2)
	st4 := openShardStores(t, root, 4)
	if err := r4.Restore(st4); err != nil {
		t.Fatal(err)
	}
	for id, wantRep := range want {
		s, err := r4.Get(id)
		if err != nil {
			t.Fatalf("session %s lost growing 1 -> 4 shards: %v", id, err)
		}
		rep, err := s.Report()
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(rep)
		if string(raw) != wantRep {
			t.Fatalf("session %s report changed across reshard", id)
		}
	}
	// Per-shard stores: after the boot compaction, reopening each store
	// must replay only the sessions placement assigns to it.
	for i, st := range st4 {
		for _, rec := range st.Records() {
			if rec.Kind != kindCreate {
				continue
			}
			if home := placement.Shard(rec.ID, 4); home != i {
				t.Fatalf("shard %d store holds session %s (home %d)", i, rec.ID, home)
			}
		}
	}
	// New sessions keep the global sequence and persist on their own shard.
	// runFleet lists everything, so filter down to the ids it minted.
	after := runFleet(t, r4, 2)
	newIDs := 0
	for id, rep := range after {
		if _, restored := want[id]; restored {
			continue
		}
		newIDs++
		var n int
		fmt.Sscanf(id, "s-%d", &n)
		if n <= 8 {
			t.Fatalf("new session reused id %s", id)
		}
		want[id] = rep
	}
	if newIDs != 2 {
		t.Fatalf("minted %d new sessions, want 2", newIDs)
	}
	r4.Close()
	closeStores(t, st4)

	// The shard WAL layout is real files on disk, one stream per shard.
	for i := 1; i < 4; i++ {
		if _, err := os.Stat(store.ShardDir(root, i)); err != nil {
			t.Fatalf("shard %d dir missing: %v", i, err)
		}
	}

	// Boot 3: shrink back to one shard; the shard-001..003 dirs are extras.
	extraIdx, err := store.FindShardDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(extraIdx) != 3 {
		t.Fatalf("found shard dirs %v, want [1 2 3]", extraIdx)
	}
	rBack := NewRouter(1, 2)
	stBack := openShardStores(t, root, 1)
	var extras []Store
	for _, i := range extraIdx {
		st, err := store.Open(store.ShardDir(root, i))
		if err != nil {
			t.Fatal(err)
		}
		extras = append(extras, st)
	}
	if err := rBack.Restore(stBack, extras...); err != nil {
		t.Fatal(err)
	}
	for id, wantRep := range want {
		s, err := rBack.Get(id)
		if err != nil {
			t.Fatalf("session %s lost shrinking 4 -> 1 shards: %v", id, err)
		}
		rep, err := s.Report()
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := json.Marshal(rep)
		if string(raw) != wantRep {
			t.Fatalf("session %s report changed shrinking to 1 shard", id)
		}
	}
	// Ids minted after the shrink must clear every id ever issued.
	s, err := rBack.Create("fresh", testConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	if want[s.ID()] != "" {
		t.Fatalf("post-shrink create reused id %s", s.ID())
	}
	rBack.Close()
	closeStores(t, stBack)
	closeStores(t, extras)

	// Drained extras hold only the seq record, with the high-water mark.
	for _, i := range extraIdx {
		st, err := store.Open(store.ShardDir(root, i))
		if err != nil {
			t.Fatal(err)
		}
		recs := st.Records()
		if len(recs) != 1 || recs[0].Kind != kindSeq {
			t.Fatalf("extra shard %d not drained: %d records", i, len(recs))
		}
		var sr seqRecord
		if err := json.Unmarshal(recs[0].Data, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Max < 10 {
			t.Fatalf("drained shard %d seq = %d, want >= 10", i, sr.Max)
		}
		st.Close()
	}
}

// TestRouterShardDegradedIsolation is the chaos gate: one shard's disk
// fails, that shard flips degraded (creates routed to it get 503 with
// Retry-After), every other shard keeps serving writes, and healing the
// disk recovers only the broken shard.
func TestRouterShardDegradedIsolation(t *testing.T) {
	root := t.TempDir()
	const nshards = 4
	stores := make([]Store, nshards)
	injectors := make([]*faultfs.Injector, nshards)
	for i := range stores {
		dir := store.ShardDir(root, i)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		stores[i], injectors[i] = openInjectedStore(t, dir, store.Options{})
	}
	r := NewRouter(nshards, 2)
	r.SetProbeInterval(5 * 1e6) // 5ms
	if err := r.Restore(stores); err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	defer closeStores(t, stores)

	// Break the shard that will own the first minted id, so the very first
	// create exercises the failure path.
	broken := placement.Shard(ids.Padded("s-", 1, 3), nshards)
	injectors[broken].Script(faultfs.Rule{Op: faultfs.OpSync, Path: "wal"})

	okByShard := make(map[int]int)
	for i := 1; i <= 16; i++ {
		id := ids.Padded("s-", i, 3)
		home := placement.Shard(id, nshards)
		s, err := r.Create("", testConfig(uint64(i)))
		if home == broken {
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("create %s on broken shard %d: err = %v, want ErrDegraded", id, home, err)
			}
			if code := httpCode(err); code != http.StatusServiceUnavailable {
				t.Fatalf("degraded create = %d, want 503", code)
			}
			if retryAfterOf(err) <= 0 {
				t.Fatal("degraded create carries no Retry-After")
			}
			continue
		}
		if err != nil {
			t.Fatalf("create %s on healthy shard %d failed: %v", id, home, err)
		}
		if _, _, err := s.SubmitBag(BagRequest{App: "shapes", Jobs: 5, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(s); err != nil {
			t.Fatal(err)
		}
		s.Wait()
		if got := s.Status().State; got != StateDone {
			t.Fatalf("session %s on healthy shard ended %s", id, got)
		}
		okByShard[home]++
	}
	if len(okByShard) != nshards-1 {
		t.Fatalf("healthy shards serving: %v, want all %d others", okByShard, nshards-1)
	}

	// Aggregate health names the broken shard; the others stay clean.
	h := r.Health()
	if !h.Degraded {
		t.Fatal("router health not degraded with a broken shard")
	}
	for i := 0; i < nshards; i++ {
		if got := r.Shard(i).Health().Degraded; got != (i == broken) {
			t.Fatalf("shard %d degraded=%v; only shard %d should be", i, got, broken)
		}
	}

	// Heal: the broken shard's probe recovers it and creates flow again.
	injectors[broken].Clear()
	waitUntil(t, "broken shard to recover", func() bool { return !r.Health().Degraded })
	for i := 0; i < 8; i++ {
		s, err := r.Create("post-heal", testConfig(uint64(100+i)))
		if err != nil {
			t.Fatalf("create after heal: %v", err)
		}
		if placement.Shard(s.ID(), nshards) == broken {
			return // a create landed on the healed shard and succeeded
		}
	}
	t.Fatal("no post-heal create landed on the healed shard")
}

// TestRouterModelReplication registers a model on the control plane and
// verifies sessions on non-control shards resolve it through their replica,
// including versions published after the fact.
func TestRouterModelReplication(t *testing.T) {
	r := NewRouter(4, 2)
	if _, err := r.RegisterModel(ModelCreateRequest{
		Name: "east", VMType: "n1-highcpu-16", Zone: "us-east1-b",
		Model: &ModelParams{A: 0.45, Tau1: 1.0, Tau2: 0.8, B: 24, L: 24},
	}); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(1)
	cfg.Model = nil
	cfg.ModelRef = "east@latest"
	sawNonControl := false
	for i := 0; i < 8; i++ {
		s, err := r.Create("ref", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Status().Config.ModelRef; got != "east@v1" {
			t.Fatalf("session %s pinned %q, want east@v1", s.ID(), got)
		}
		if placement.Shard(s.ID(), 4) != 0 {
			sawNonControl = true
		}
	}
	if !sawNonControl {
		t.Fatal("no session landed on a non-control shard; replica path untested")
	}

	// Publish v2 directly on the control plane; the commit fan-out must
	// make it resolvable shard-wide, synchronously.
	if _, err := r.Shard(0).registry.Publish("east",
		registry.Provenance{Family: "manual",
			Params: registry.Params{A: 0.45, Tau1: 1.0, Tau2: 0.8, B: 24, L: 24},
			Source: "refit"}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s, err := r.Create("ref2", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Status().Config.ModelRef; got != "east@v2" {
			t.Fatalf("post-publish session %s pinned %q, want east@v2", s.ID(), got)
		}
	}
	// An unknown ref still fails cleanly on every shard.
	bad := cfg
	bad.ModelRef = "west@latest"
	for i := 0; i < 4; i++ {
		if _, err := r.Create("bad", bad); err == nil {
			t.Fatal("unknown model_ref resolved on some shard")
		}
	}
}

// TestRouterStatsShardsArray checks /api/stats keeps its single-manager
// top-level keys while adding per-shard detail.
func TestRouterStatsShardsArray(t *testing.T) {
	r := NewRouter(4, 2)
	runFleet(t, r, 5)
	payload := r.statsPayload()
	for _, key := range []string{"sessions", "models", "schedule_cache", "dp_solves", "health"} {
		if _, ok := payload[key]; !ok {
			t.Fatalf("stats payload missing backward-compatible key %q", key)
		}
	}
	shards, ok := payload["shards"].([]map[string]any)
	if !ok || len(shards) != 4 {
		t.Fatalf("stats payload shards = %T (len %d), want 4 entries", payload["shards"], len(shards))
	}
	total := 0
	for i, sh := range shards {
		if sh["shard"] != i {
			t.Fatalf("shards[%d] labeled %v", i, sh["shard"])
		}
		total += sh["sessions"].(map[State]int)[StateDone]
	}
	if agg := payload["sessions"].(map[State]int)[StateDone]; agg != 5 || total != 5 {
		t.Fatalf("done sessions: aggregate %d, shard sum %d, want 5", agg, total)
	}
}
