package batch

import "sync"

// Job-state blocks are pooled across services by size class. A serving
// process churns through many short-lived sessions with a handful of bag
// shapes, so the per-bag []jobState backing array — the largest single
// allocation a session makes — is recycled through sync.Pool instead of
// handed to the collector on every session delete. Blocks are zeroed
// before reuse, so a service built on recycled blocks is byte-identical to
// one built on fresh memory.
const (
	minStateClassBits = 4  // smallest pooled block: 16 states
	maxStateClassBits = 12 // largest pooled block: 4096 states
)

var statePools [maxStateClassBits - minStateClassBits + 1]sync.Pool

// stateClass returns the pool index of the smallest class holding n states.
func stateClass(n int) int {
	c := 0
	for sz := 1 << minStateClassBits; sz < n && c < len(statePools)-1; sz <<= 1 {
		c++
	}
	return c
}

// getStates returns a zeroed jobState slice of length n backed by a pooled
// block when one is available. Bags larger than the biggest size class get
// a dedicated allocation that is never pooled.
func getStates(n int) []jobState {
	if n > 1<<maxStateClassBits {
		return make([]jobState, n)
	}
	c := stateClass(n)
	if v := statePools[c].Get(); v != nil {
		return (*(v.(*[]jobState)))[:n]
	}
	return make([]jobState, n, 1<<(minStateClassBits+c))
}

// putStates zeroes blk over its full capacity and returns it to its size
// class. Only blocks minted by getStates (capacity exactly a class size)
// are pooled; anything else is dropped for the collector.
func putStates(blk []jobState) {
	full := blk[:cap(blk)]
	for i := range full {
		full[i] = jobState{}
	}
	for c := range statePools {
		if cap(full) == 1<<(minStateClassBits+c) {
			statePools[c].Put(&full)
			return
		}
	}
}

// Recycle returns the service's job-state blocks to the shared pools and
// drops every reference into them. It must be the last call on the
// service: the caller is responsible for ensuring no concurrent or later
// use (the serving layer calls it under the session lock once the session
// is marked deleted, after which every accessor 404s before reaching the
// service).
func (s *Service) Recycle() {
	// Every pointer into the blocks must go before the blocks are reused:
	// jobs, running, and the cluster queue all alias jobState memory.
	s.jobs = nil
	s.jobOrder = nil
	s.running = nil
	s.gangs = nil
	for _, blk := range s.stateBlocks {
		putStates(blk)
	}
	s.stateBlocks = nil
}
