package batch

import (
	"fmt"
	"strings"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/sim"
)

// gang is a scheduling slot backed by GangSize VMs launched together. The
// cluster manager sees one node per gang; a job occupies the whole gang.
type gang struct {
	id      int
	rev     int // increments every time the gang rejoins the cluster
	node    cluster.NodeID
	members []*cloud.VM
	retired bool

	spareTimer sim.Timer
}

// nodeID derives the cluster node name for the gang's current revision.
func (g *gang) nodeID() cluster.NodeID {
	var sb strings.Builder
	sb.Grow(16)
	sb.WriteString("gang-")
	ids.WritePadded(&sb, g.id, 3)
	sb.WriteString(".r")
	ids.WritePadded(&sb, g.rev, 0)
	return cluster.NodeID(sb.String())
}

// OldestAge returns the age of the gang's oldest running member — the
// member closest to its 24h deadline, which dominates the reuse decision.
func (g *gang) OldestAge(now float64) float64 {
	oldest := 0.0
	for _, vm := range g.members {
		if vm.State != cloud.VMRunning {
			continue
		}
		if a := vm.Age(now); a > oldest {
			oldest = a
		}
	}
	return oldest
}

// launchGang starts a fresh gang of GangSize VMs and registers it as a
// cluster node.
func (s *Service) launchGang() (*gang, error) {
	s.gangCounter++
	g := &gang{id: s.gangCounter, members: make([]*cloud.VM, 0, s.cfg.GangSize)}
	for i := 0; i < s.cfg.GangSize; i++ {
		vm, err := s.Provider.Launch(s.cfg.VMType, s.cfg.Zone, s.cfg.Preemptible)
		if err != nil {
			return nil, err
		}
		g.members = append(g.members, vm)
	}
	g.node = g.nodeID()
	s.gangs[g.node] = g
	if err := s.Manager.AddNode(g.node); err != nil {
		return nil, err
	}
	return g, nil
}

// retireGang terminates all members and removes the gang from the cluster.
func (s *Service) retireGang(g *gang) {
	if g.retired {
		return
	}
	g.retired = true
	g.spareTimer.Cancel()
	// Removing the node first fails any running job (shouldn't happen for
	// idle retirement, but drain() may retire busy gangs only after all
	// jobs are done).
	_ = s.Manager.RemoveNode(g.node)
	delete(s.gangs, g.node)
	for _, vm := range g.members {
		if vm.State == cloud.VMRunning {
			if err := s.Provider.Terminate(vm.ID); err != nil {
				panic(fmt.Sprintf("batch: retiring gang %s: %v", g.node, err))
			}
		}
	}
}

// onPreemption handles a member VM preemption: the gang's running job (if
// any) fails via RemoveNode; the dead member is replaced and the gang
// rejoins the cluster when there is outstanding work.
func (s *Service) onPreemption(vm *cloud.VM) {
	g := s.findGang(vm)
	if g == nil || g.retired {
		return
	}
	g.spareTimer.Cancel()
	// Fail the running job and detach the gang under its old identity.
	_ = s.Manager.RemoveNode(g.node)
	delete(s.gangs, g.node)

	if s.remaining == 0 {
		// Nothing left to run: terminate survivors.
		g.retired = true
		for _, m := range g.members {
			if m.State == cloud.VMRunning {
				_ = s.Provider.Terminate(m.ID)
			}
		}
		return
	}
	// Replace the dead member (the paper's service maintains cluster
	// size) and rejoin under a new revision.
	for i, m := range g.members {
		if m.State != cloud.VMRunning {
			nv, err := s.Provider.Launch(s.cfg.VMType, s.cfg.Zone, s.cfg.Preemptible)
			if err != nil {
				panic(fmt.Sprintf("batch: replacing preempted member: %v", err))
			}
			g.members[i] = nv
		}
	}
	g.rev++
	g.node = g.nodeID()
	s.gangs[g.node] = g
	if err := s.Manager.AddNode(g.node); err != nil {
		panic(fmt.Sprintf("batch: rejoining gang: %v", err))
	}
}

func (s *Service) findGang(vm *cloud.VM) *gang {
	for _, g := range s.gangs {
		for _, m := range g.members {
			if m.ID == vm.ID {
				return g
			}
		}
	}
	return nil
}
