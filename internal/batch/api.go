package batch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/workload"
)

// API exposes the batch service over HTTP with a JSON API, mirroring the
// paper's controller interface (Section 5: "exposes an HTTP API to
// end-users"). The simulation is single-threaded, so every handler
// serializes on one mutex. The intended flow is:
//
//	POST /api/bags   {"app": "nanoconfinement", "jobs": 100, "seed": 1}
//	POST /api/run    {}                       -> runs to completion
//	GET  /api/report                          -> cost / preemption summary
//	GET  /api/jobs                            -> per-job status
type API struct {
	mu     sync.Mutex
	svc    *Service
	mkSvc  func() (*Service, error)
	ran    bool
	report Report
}

// NewAPI wraps a service constructor; the service is (re)created lazily so
// a client can run multiple configurations in one process lifetime.
func NewAPI(mkSvc func() (*Service, error)) *API {
	if mkSvc == nil {
		panic("batch: nil service constructor")
	}
	return &API{mkSvc: mkSvc}
}

// Handler returns the HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/bags", a.handleSubmitBag)
	mux.HandleFunc("POST /api/run", a.handleRun)
	mux.HandleFunc("GET /api/report", a.handleReport)
	mux.HandleFunc("GET /api/jobs", a.handleJobs)
	mux.HandleFunc("GET /api/status", a.handleStatus)
	mux.HandleFunc("GET /api/vms", a.handleVMs)
	mux.HandleFunc("POST /api/estimate", a.handleEstimate)
	return mux
}

// handleEstimate quotes a bag's expected makespan and cost without running
// it (Section 4.1's "scheduling and monitoring" use of the analysis).
func (a *API) handleEstimate(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var req bagRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding estimate request: %w", err))
		return
	}
	app, err := workload.ByName(req.App)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Jobs <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("jobs must be positive"))
		return
	}
	if err := a.ensureService(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	est, err := a.svc.Estimate(workload.NewBag(app, req.Jobs, req.Jitter, req.Seed))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ideal_makespan_hours":    est.IdealMakespan,
		"expected_makespan_hours": est.ExpectedMakespan,
		"per_job_failure_prob":    est.PerJobFailureProb,
		"expected_cost_usd":       est.ExpectedCost,
	})
}

// vmJSON is the wire form of one VM for GET /api/vms.
type vmJSON struct {
	ID          string  `json:"id"`
	Type        string  `json:"type"`
	Zone        string  `json:"zone"`
	Preemptible bool    `json:"preemptible"`
	AgeHours    float64 `json:"age_hours"`
}

func (a *API) handleVMs(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := []vmJSON{}
	if a.svc != nil {
		now := a.svc.Engine.Now()
		for _, vm := range a.svc.Provider.Running() {
			out = append(out, vmJSON{
				ID:          vm.ID,
				Type:        string(vm.Type),
				Zone:        string(vm.Zone),
				Preemptible: vm.Preemptible,
				AgeHours:    vm.Age(now),
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type bagRequest struct {
	App    string  `json:"app"`
	Jobs   int     `json:"jobs"`
	Jitter float64 `json:"jitter"`
	Seed   uint64  `json:"seed"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (a *API) ensureService() error {
	if a.svc != nil {
		return nil
	}
	svc, err := a.mkSvc()
	if err != nil {
		return err
	}
	a.svc = svc
	a.ran = false
	return nil
}

func (a *API) handleSubmitBag(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var req bagRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding bag request: %w", err))
		return
	}
	app, err := workload.ByName(req.App)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Jobs <= 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("jobs must be positive"))
		return
	}
	if err := a.ensureService(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if a.ran {
		writeErr(w, http.StatusConflict, fmt.Errorf("service already ran; restart to submit more work"))
		return
	}
	bag := workload.NewBag(app, req.Jobs, req.Jitter, req.Seed)
	if err := a.svc.SubmitBag(bag); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"submitted":    len(bag.Jobs),
		"mean_runtime": bag.MeanRuntime(),
	})
}

func (a *API) handleRun(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.svc == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no bag submitted"))
		return
	}
	if a.ran {
		writeErr(w, http.StatusConflict, fmt.Errorf("already ran"))
		return
	}
	rep, err := a.svc.Run()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	a.ran = true
	a.report = rep
	writeJSON(w, http.StatusOK, reportJSON(rep))
}

func (a *API) handleReport(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.ran {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no completed run"))
		return
	}
	writeJSON(w, http.StatusOK, reportJSON(a.report))
}

func (a *API) handleJobs(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.svc == nil {
		writeJSON(w, http.StatusOK, []JobStatus{})
		return
	}
	writeJSON(w, http.StatusOK, a.svc.JobStatuses())
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := map[string]any{"ran": a.ran}
	if a.svc != nil {
		st["remaining_jobs"] = a.svc.RemainingJobs()
		st["active_gangs"] = a.svc.ActiveGangs()
		st["virtual_time"] = a.svc.Engine.Now()
	}
	writeJSON(w, http.StatusOK, st)
}

func reportJSON(r Report) map[string]any {
	return map[string]any{
		"jobs_completed": r.JobsCompleted,
		"job_failures":   r.JobFailures,
		"preemptions":    r.Preemptions,
		"total_cost_usd": roundCents(r.TotalCost),
		"cost_per_job":   r.CostPerJob,
		"makespan_hours": r.Makespan,
		"ideal_makespan": r.IdealMakespan,
		"increase_pct":   r.IncreasePct,
		"mean_attempts":  r.MeanAttempts,
	}
}
