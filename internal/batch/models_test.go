package batch

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestModelKeyFormat(t *testing.T) {
	k := ModelKey(trace.HighCPU16, trace.USEast1B, trace.Day)
	if k != "n1-highcpu-16|us-east1-b|day" {
		t.Fatalf("key = %q", k)
	}
}

func TestFitStudyModels(t *testing.T) {
	reg, err := FitStudyModels(trace.HighCPU16, trace.USEast1B, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("registry size %d", reg.Len())
	}
	day := reg.MustGet(ModelKey(trace.HighCPU16, trace.USEast1B, trace.Day))
	night := reg.MustGet(ModelKey(trace.HighCPU16, trace.USEast1B, trace.Night))
	// Night VMs live longer (Observation 5), so the night model's expected
	// lifetime must exceed the day model's.
	if !(night.NormalizedExpectedLifetime() > day.NormalizedExpectedLifetime()) {
		t.Fatalf("night E[L] %v not above day %v",
			night.NormalizedExpectedLifetime(), day.NormalizedExpectedLifetime())
	}
}

func TestServiceWithModelRegistry(t *testing.T) {
	reg, err := FitStudyModels(trace.HighCPU16, trace.USEast1B, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		VMType:         trace.HighCPU16,
		Zone:           trace.USEast1B,
		Gangs:          3,
		GangSize:       1,
		Preemptible:    true,
		HotSpareTTL:    1,
		Models:         reg,
		UseReusePolicy: true,
		Seed:           21,
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(workload.NewBag(workload.Shapes, 30, 0.02, 3)); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 30 {
		t.Fatalf("completed %d", rep.JobsCompleted)
	}
}

func TestServiceRegistryMissingEntries(t *testing.T) {
	reg := core.NewRegistry()
	reg.Put(ModelKey(trace.HighCPU16, trace.USEast1B, trace.Day), testModel())
	cfg := baseConfig()
	cfg.Model = nil
	cfg.Models = reg // night entry missing
	if _, err := New(cfg); err == nil {
		t.Fatal("incomplete registry accepted")
	}
}

func TestModelForTimeOfDay(t *testing.T) {
	reg, err := FitStudyModels(trace.HighCPU16, trace.USEast1B, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	cfg.Model = nil
	cfg.Models = reg
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	day := reg.MustGet(ModelKey(trace.HighCPU16, trace.USEast1B, trace.Day))
	night := reg.MustGet(ModelKey(trace.HighCPU16, trace.USEast1B, trace.Night))
	if svc.modelFor(12) != day { // noon
		t.Fatal("noon should use the day model")
	}
	if svc.modelFor(2) != night { // 2AM
		t.Fatal("2AM should use the night model")
	}
	if svc.modelFor(24+21) != night { // 9PM next day
		t.Fatal("9PM should use the night model")
	}
	// Scheduler cache returns stable instances.
	if svc.schedulerFor(12) != svc.schedulerFor(13) {
		t.Fatal("scheduler cache miss for same model")
	}
}
