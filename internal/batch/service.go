// Package batch implements the paper's batch computing service (Section 5):
// a centralized controller that maintains a cluster of preemptible VMs on
// the (simulated) cloud, schedules bag-of-jobs workloads through the
// Slurm-like cluster manager, applies the model-driven VM reuse policy,
// keeps stable VMs as hot spares, optionally checkpoints jobs with the DP
// schedule, and accounts costs. The HTTP front end lives in internal/serve,
// which runs many Services as concurrent, isolated sessions; this package
// is the per-session simulation library underneath it.
//
// Jobs occupy gangs: an application needing more cores than one VM provides
// runs on ceil(cores/vmCPUs) VMs launched and scheduled together. A gang is
// the cluster manager's node unit; preempting any member fails the gang's
// running job, after which the dead member is replaced and the gang
// rejoins. The reuse policy evaluates the gang's oldest member, which
// carries the deadline risk.
package batch

import (
	"context"
	"fmt"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config configures a Service.
type Config struct {
	VMType trace.VMType
	Zone   trace.Zone
	// Gangs is the number of gangs (scheduling slots) the cluster
	// maintains. Total VMs = Gangs * GangSize.
	Gangs int
	// GangSize is the number of VMs per gang (ceil(app cores / VM CPUs)).
	GangSize int
	// Preemptible selects preemptible or on-demand VMs (the Figure 9a
	// baseline uses on-demand).
	Preemptible bool
	// HotSpareTTL is how long an idle gang is retained before being
	// terminated (the paper keeps stable VMs for one hour).
	HotSpareTTL float64
	// Model is the fitted preemption model used by the policies; nil
	// disables model-driven decisions (memoryless behavior).
	Model *core.Model
	// Models optionally carries environment-specific models keyed by
	// ModelKey (Section 5's per-VM-type/region/time-of-day
	// parameterization); when set, policy decisions use the model matching
	// the conditions at decision time, falling back to Model.
	Models *core.Registry
	// UseReusePolicy enables the Section 4.2 VM reuse policy (requires
	// Model).
	UseReusePolicy bool
	// CheckpointDelta > 0 enables DP checkpointing with the given
	// per-checkpoint cost in hours (requires Model).
	CheckpointDelta float64
	// CheckpointStep is the DP resolution in hours (default 1 minute).
	CheckpointStep float64
	// PlannerParallelism is the row-parallel worker count for the DP
	// checkpoint solve (0 = the process default, then GOMAXPROCS). Solved
	// tables are byte-identical at any worker count, so sessions sharing a
	// cached planner may request different values freely.
	PlannerParallelism int
	// WarningCheckpoint enables emergency checkpoints on the provider's
	// ~30-second preemption notice (Section 2.1's "small advance
	// warning"): the work completed on the current attempt up to the
	// warning instant survives the preemption.
	WarningCheckpoint bool
	// Seed drives all randomness.
	Seed uint64
}

// GangSizeFor returns ceil(app.Cores / cpus) for the config's VM type.
func GangSizeFor(app workload.App, vt trace.VMType) int {
	cpus := vt.CPUs()
	return (app.Cores + cpus - 1) / cpus
}

// jobState tracks one job across attempts.
type jobState struct {
	spec      workload.JobSpec
	remaining float64 // work hours still to do (after checkpoint recovery)
	attempts  int
	failures  int
	done      bool
	doneAt    float64
	// schedule of the current attempt, for checkpoint recovery mapping.
	schedule policy.Schedule
	hasCkpt  bool
	// warningWork is the work snapshotted by an emergency checkpoint on
	// the current attempt (WarningCheckpoint mode).
	warningWork float64
	// arrival is the virtual time the job becomes available.
	arrival float64
	// class indexes the job's application class in Service.classes.
	class int
	// cjob is the cluster-level job, reused across attempts: the struct and
	// its callback closures are built once per job, not once per attempt
	// (the cluster manager drops its reference before every completion or
	// failure callback, so resubmitting the same struct is safe).
	cjob cluster.Job
}

// Service is the batch computing controller. A Service owns its engine,
// provider, and cluster outright and shares no mutable state with other
// Services — many of them can run concurrently in one process (see
// internal/serve) as long as each instance is driven from one goroutine at
// a time. Expensive derived artifacts (reuse schedulers, DP checkpoint
// planners) come from the process-wide cache in internal/policy.
type Service struct {
	Engine   *sim.Engine
	Provider *cloud.Provider
	Manager  *cluster.Manager

	// OnSnapshot, when set before Run, receives an observation once at run
	// start, every ProgressEvery engine steps, and a final time after the
	// run drains. It is invoked from the goroutine driving Run; the
	// callback is the only sanctioned way to observe a Service mid-run from
	// outside.
	OnSnapshot func(Snapshot)
	// SnapshotDetail, optional, is consulted before each periodic snapshot:
	// when it returns false the snapshot carries only Progress (Jobs and
	// VMs nil), skipping the O(jobs) status materialization for intervals
	// nobody is inspecting. The initial and final snapshots always carry
	// full detail.
	SnapshotDetail func() bool
	// ProgressEvery is the snapshot (and cancellation-check) cadence in
	// engine steps (default 4096). A cancelled context is noticed within one
	// interval.
	ProgressEvery int

	cfg     Config
	planner *policy.CheckpointPlanner

	gangs    map[cluster.NodeID]*gang
	jobs     map[string]*jobState
	jobOrder []string
	// stateBlocks are the pooled backing arrays behind jobs (one per
	// submitted bag), retained so Recycle can hand them back (arena.go).
	stateBlocks [][]jobState
	remaining   int // jobs not yet done
	// classes aggregates per-application-class progress incrementally (in
	// first-submission order), so snapshots never need an O(jobs) rescan.
	classes    []ClassProgress
	classIndex map[string]int
	// classesGen ticks on every mutation of classes; Progress uses it to
	// reuse the last published (immutable) class snapshot while nothing
	// changed instead of copying per interval.
	classesGen     uint64
	classesSnap    []ClassProgress
	classesSnapGen uint64
	// running tracks which job occupies each gang, for warning handling.
	running map[cluster.NodeID]*jobState

	startedAt   float64
	finishedAt  float64
	gangCounter int
	// jobCompleteFn/jobFailFn are the cluster callbacks shared by every job
	// of the service (the per-job state rides in cluster.Job.Ctx), so
	// enqueueing a job allocates no closures. spareCb and enqueueCb are the
	// shared timer callbacks for hot-spare expiry and deferred-bag arrival.
	jobCompleteFn func(*cluster.Job, cluster.NodeID)
	jobFailFn     func(*cluster.Job, cluster.NodeID, float64)
	spareCb       func(any)
	enqueueCb     func(any)
	// stopping marks a cancelled run's teardown: job failures induced by
	// retiring busy gangs are abandoned instead of re-enqueued, and no
	// replacement capacity is launched.
	stopping bool
}

// New creates a service over a fresh engine and provider. Call SubmitBag
// then Run.
func New(cfg Config) (*Service, error) {
	if cfg.Gangs <= 0 || cfg.GangSize <= 0 {
		return nil, fmt.Errorf("batch: invalid cluster shape gangs=%d size=%d", cfg.Gangs, cfg.GangSize)
	}
	if _, err := cloud.Lookup(cfg.VMType); err != nil {
		return nil, err
	}
	if cfg.UseReusePolicy && cfg.Model == nil && cfg.Models == nil {
		return nil, fmt.Errorf("batch: reuse policy requires a model or registry")
	}
	if cfg.UseReusePolicy && cfg.Model == nil && cfg.Models != nil {
		// Without a fallback model, the registry must cover every
		// time-of-day the service can encounter.
		for _, tod := range []trace.TimeOfDay{trace.Day, trace.Night} {
			if _, ok := cfg.Models.Get(ModelKey(cfg.VMType, cfg.Zone, tod)); !ok {
				return nil, fmt.Errorf("batch: model registry missing %s entry for %s/%s",
					tod, cfg.VMType, cfg.Zone)
			}
		}
	}
	if cfg.CheckpointDelta > 0 && cfg.Model == nil {
		return nil, fmt.Errorf("batch: checkpointing requires a model")
	}
	if cfg.CheckpointStep <= 0 {
		cfg.CheckpointStep = 1.0 / 60
	}
	if cfg.HotSpareTTL < 0 {
		return nil, fmt.Errorf("batch: negative hot spare TTL")
	}

	engine := sim.NewEngine()
	provider := cloud.NewProvider(engine, cfg.Seed, trace.Busy)
	mgr := cluster.New(engine)
	s := &Service{
		Engine:     engine,
		Provider:   provider,
		Manager:    mgr,
		cfg:        cfg,
		gangs:      make(map[cluster.NodeID]*gang, 8),
		jobs:       make(map[string]*jobState),
		running:    make(map[cluster.NodeID]*jobState, 8),
		classIndex: make(map[string]int, 4),
	}
	s.jobCompleteFn = func(j *cluster.Job, node cluster.NodeID) {
		delete(s.running, node)
		s.onJobComplete(j.Ctx.(*jobState))
	}
	s.jobFailFn = func(j *cluster.Job, node cluster.NodeID, progress float64) {
		delete(s.running, node)
		s.onJobFail(j.Ctx.(*jobState), progress)
	}
	s.spareCb = func(a any) {
		g := a.(*gang)
		if st, ok := s.Manager.State(g.node); ok && st == cluster.NodeIdle {
			s.retireGang(g)
		}
	}
	s.enqueueCb = func(a any) { s.enqueue(a.(*jobState)) }
	if cfg.UseReusePolicy {
		mgr.PlaceFilter = s.placeFilter
		mgr.OnBlocked = s.onBlocked
	}
	if cfg.CheckpointDelta > 0 {
		// The planner is shared process-wide: every session with the same
		// (model identity, delta, step) reuses one DP table, and concurrent
		// cold solves of that table are deduplicated inside the planner.
		s.planner = policy.SharedPlanner(cfg.Model, cfg.CheckpointDelta, cfg.CheckpointStep)
		if cfg.PlannerParallelism > 0 {
			s.planner.SetParallelism(cfg.PlannerParallelism)
		}
	}
	mgr.OnIdle = s.onGangIdle
	mgr.OnPlace = s.onPlace
	provider.OnPreemption(s.onPreemption)
	if cfg.WarningCheckpoint {
		provider.WarningLead = cloud.DefaultWarningLead
		provider.OnWarning(s.onWarning)
	}
	return s, nil
}

// onPlace records which job occupies a gang.
func (s *Service) onPlace(j *cluster.Job, node cluster.NodeID) {
	if js, ok := j.Ctx.(*jobState); ok {
		s.running[node] = js
	}
}

// onWarning takes an emergency checkpoint for the job running on the
// warned VM's gang: everything computed on the current attempt up to this
// instant survives the imminent preemption.
func (s *Service) onWarning(vm *cloud.VM) {
	g := s.findGang(vm)
	if g == nil || g.retired {
		return
	}
	js, ok := s.running[g.node]
	if !ok {
		return
	}
	j, startedAt := s.Manager.RunningJob(g.node)
	if j == nil {
		return
	}
	elapsed := s.Engine.Now() - startedAt
	sched := js.schedule
	if !js.hasCkpt {
		sched = policy.Schedule{Intervals: []float64{js.remaining}}
	}
	if w := workAtElapsed(sched, s.cfg.CheckpointDelta, elapsed); w > js.warningWork {
		js.warningWork = w
	}
}

// workAtElapsed maps elapsed wall time of an attempt to the work actually
// computed (excluding checkpoint-write time), counting partial segments —
// the quantity an emergency checkpoint preserves.
func workAtElapsed(sched policy.Schedule, delta, elapsed float64) float64 {
	var wall, work float64
	for i, iv := range sched.Intervals {
		if elapsed < wall+iv {
			return work + (elapsed - wall)
		}
		work += iv
		wall += iv
		if i < len(sched.Intervals)-1 {
			if elapsed < wall+delta {
				return work // mid checkpoint write: no new work
			}
			wall += delta
		}
	}
	return work
}

// SubmitBag registers all jobs of a bag for immediate execution. The
// service learns job runtimes from the bag's mean (Section 5's bag-of-jobs
// abstraction).
func (s *Service) SubmitBag(bag workload.Bag) error {
	return s.SubmitBagAt(bag, 0)
}

// SubmitBagAt registers a bag whose jobs arrive at the given virtual time
// (hours after Run starts). Deferred bags model a service receiving work
// over its lifetime — the situation where retaining stable VMs as hot
// spares between bags pays off. Must be called before Run. The bag is
// applied atomically: on error, no job was registered.
func (s *Service) SubmitBagAt(bag workload.Bag, at float64) error {
	if err := s.ValidateBagAt(bag, at); err != nil {
		return err
	}
	if len(s.jobs) == 0 {
		// First bag: size the registries for it up front.
		s.jobs = make(map[string]*jobState, len(bag.Jobs))
		s.jobOrder = make([]string, 0, len(bag.Jobs))
	}
	// One backing array for the whole bag's job states: pointers into it
	// stay valid for the service's lifetime, and submission is one
	// (usually pooled — see arena.go) allocation instead of one per job.
	states := getStates(len(bag.Jobs))
	s.stateBlocks = append(s.stateBlocks, states)
	for i, spec := range bag.Jobs {
		js := &states[i]
		js.spec = spec
		js.remaining = spec.Runtime
		js.arrival = at
		ci, ok := s.classIndex[spec.App]
		if !ok {
			ci = len(s.classes)
			s.classIndex[spec.App] = ci
			s.classes = append(s.classes, ClassProgress{App: spec.App})
		}
		js.class = ci
		s.classes[ci].JobsTotal++
		s.classes[ci].RemainingHours += spec.Runtime
		s.classesGen++
		s.jobs[spec.ID] = js
		s.jobOrder = append(s.jobOrder, spec.ID)
		s.remaining++
	}
	return nil
}

// ValidateBagAt runs every check SubmitBagAt applies, without mutating any
// state. Callers that must sequence a side effect (e.g. a durable log
// write) between validation and application use it to guarantee the
// application step cannot fail afterwards.
func (s *Service) ValidateBagAt(bag workload.Bag, at float64) error {
	if len(bag.Jobs) == 0 {
		return fmt.Errorf("batch: empty bag")
	}
	if at < 0 {
		return fmt.Errorf("batch: negative arrival time %v", at)
	}
	// Intra-bag duplicate detection: small bags use a quadratic scan (no
	// allocation, and n is tiny), large ones a set.
	var seen map[string]bool
	if len(bag.Jobs) > 64 {
		seen = make(map[string]bool, len(bag.Jobs))
	}
	for i, spec := range bag.Jobs {
		dup := false
		if _, exists := s.jobs[spec.ID]; exists {
			dup = true
		} else if seen != nil {
			dup = seen[spec.ID]
			seen[spec.ID] = true
		} else {
			for _, prev := range bag.Jobs[:i] {
				if prev.ID == spec.ID {
					dup = true
					break
				}
			}
		}
		if dup {
			return fmt.Errorf("batch: duplicate job %q", spec.ID)
		}
		if spec.Runtime <= 0 {
			return fmt.Errorf("batch: job %q has non-positive runtime", spec.ID)
		}
	}
	return nil
}

// Run launches the cluster, executes all submitted jobs to completion, then
// drains the cluster and returns the report. It must be called once.
//
// The context is threaded into the engine's event loop (checked every
// ProgressEvery events): when it is cancelled, Run terminates every live
// gang — so accrued VM cost is final and deterministic for the instant of
// cancellation — discards the partial report, and returns the context's
// error wrapped with the virtual time reached. A cancelled service must not
// be run again.
func (s *Service) Run(ctx context.Context) (Report, error) {
	if s.remaining == 0 {
		return Report{}, fmt.Errorf("batch: no jobs submitted")
	}
	if err := ctx.Err(); err != nil {
		return Report{}, fmt.Errorf("batch: run not started: %w", err)
	}
	s.startedAt = s.Engine.Now()
	for i := 0; i < s.cfg.Gangs; i++ {
		if _, err := s.launchGang(); err != nil {
			return Report{}, err
		}
	}
	for _, id := range s.jobOrder {
		js := s.jobs[id]
		if js.arrival <= s.Engine.Now() {
			s.enqueue(js)
		} else {
			s.Engine.AtCall(js.arrival, s.enqueueCb, js)
		}
	}
	// Drive the simulation until every job completes, surfacing snapshots
	// (and noticing cancellation) every ProgressEvery events.
	s.publish(true)
	err := s.Engine.DriveContext(ctx,
		s.ProgressEvery,
		func() bool { return s.remaining == 0 },
		func() { s.publish(false) },
	)
	switch {
	case err == sim.ErrStalled:
		return Report{}, fmt.Errorf("batch: simulation stalled with %d jobs remaining", s.remaining)
	case err != nil:
		// Cancellation: retire every gang at the cancellation instant so the
		// accrued cost is settled, then surface a final snapshot of the
		// abandoned state. The partial report is deliberately discarded.
		// stopping suppresses the usual failure-recovery reaction to busy
		// gangs being torn down (re-enqueue + replacement launch), which
		// would otherwise leave fresh gangs running after the drain.
		s.stopping = true
		s.drain()
		s.publish(true)
		return Report{}, fmt.Errorf("batch: run cancelled at t=%.3fh with %d of %d jobs done: %w",
			s.Engine.Now(), len(s.jobs)-s.remaining, len(s.jobs), err)
	}
	s.finishedAt = s.Engine.Now()
	s.drain()
	s.publish(true)
	return s.report(), nil
}

// publish delivers a snapshot to the OnSnapshot observer, if any. Periodic
// publishes (full=false) defer to SnapshotDetail on whether to pay for the
// per-job and VM listings.
func (s *Service) publish(full bool) {
	if s.OnSnapshot == nil {
		return
	}
	if !full && s.SnapshotDetail != nil && !s.SnapshotDetail() {
		s.OnSnapshot(Snapshot{Progress: s.Progress()})
		return
	}
	s.OnSnapshot(s.Snapshot())
}

// ensureCapacity scales the cluster back toward its configured size when
// work is outstanding — after an idle period the hot-spare TTL may have
// retired every gang.
func (s *Service) ensureCapacity() {
	if s.stopping {
		return
	}
	target := s.cfg.Gangs
	if s.remaining < target {
		target = s.remaining
	}
	for len(s.gangs) < target {
		if _, err := s.launchGang(); err != nil {
			panic(fmt.Sprintf("batch: restoring cluster capacity: %v", err))
		}
	}
}

// enqueue submits (or resubmits) a job's remaining work to the cluster.
func (s *Service) enqueue(js *jobState) {
	wall := js.remaining
	js.hasCkpt = false
	// The checkpoint schedule depends on the age of the gang the job will
	// land on, which is unknown until placement. The planner is consulted
	// at placement time via the wall-time adjustment below being
	// recomputed; as a controller simplification we plan at age 0 when
	// enqueueing and re-plan on each attempt (the paper precomputes
	// schedules per job length the same way).
	if s.planner != nil {
		// Re-plan in place: the previous attempt's interval buffer is dead
		// the moment we re-plan, so hand it back to PlanInto for reuse.
		js.schedule = s.planner.PlanInto(js.schedule.Intervals, js.remaining, 0)
		js.hasCkpt = true
		wall = js.remaining + s.cfg.CheckpointDelta*float64(js.schedule.NumCheckpoints())
	}
	js.attempts++
	s.classes[js.class].Attempts++
	s.classesGen++
	js.warningWork = 0
	if js.cjob.OnComplete == nil {
		js.cjob = cluster.Job{
			ID:         js.spec.ID,
			Ctx:        js,
			OnComplete: s.jobCompleteFn,
			OnFail:     s.jobFailFn,
		}
	}
	js.cjob.Remaining = wall
	s.ensureCapacity()
	s.Manager.Submit(&js.cjob)
}

func (s *Service) onJobComplete(js *jobState) {
	c := &s.classes[js.class]
	c.JobsDone++
	c.RemainingHours -= js.remaining
	s.classesGen++
	js.remaining = 0
	js.done = true
	js.doneAt = s.Engine.Now()
	s.remaining--
}

// onJobFail handles a preemption-induced failure: recover checkpointed
// progress and resubmit.
func (s *Service) onJobFail(js *jobState, elapsedWall float64) {
	if s.stopping {
		// The failure is an artifact of the cancelled run's teardown, not
		// of the simulated cloud: abandon the job without accounting or
		// retry.
		return
	}
	js.failures++
	s.classes[js.class].Failures++
	s.classesGen++
	before := js.remaining
	recovered := 0.0
	if js.hasCkpt {
		recovered = recoveredWork(js.schedule, s.cfg.CheckpointDelta, elapsedWall)
	}
	// An emergency warning checkpoint may have preserved more than the
	// last periodic one.
	if js.warningWork > recovered {
		recovered = js.warningWork
	}
	if recovered > 0 {
		js.remaining -= recovered
		if js.remaining < 0 {
			js.remaining = 0
		}
	}
	s.classes[js.class].RemainingHours -= before - js.remaining
	// Without any checkpoint all progress is lost; remaining unchanged.
	s.enqueue(js)
}

// recoveredWork maps elapsed wall time of a failed attempt to the work
// preserved by its last completed checkpoint.
func recoveredWork(sched policy.Schedule, delta, elapsed float64) float64 {
	var wall, work float64
	for i, iv := range sched.Intervals {
		if i == len(sched.Intervals)-1 {
			// The final segment completes the job and is not followed by
			// a checkpoint; a failure during it recovers nothing extra.
			break
		}
		segEnd := wall + iv + delta // work plus the checkpoint write
		if elapsed+1e-12 < segEnd {
			break
		}
		wall = segEnd
		work += iv
	}
	return work
}

// placeFilter implements the VM reuse policy at placement time, using the
// model matching the current conditions.
func (s *Service) placeFilter(j *cluster.Job, node cluster.NodeID) bool {
	g, ok := s.gangs[node]
	if !ok {
		return true
	}
	now := s.Engine.Now()
	return s.schedulerFor(now).ShouldReuse(g.OldestAge(now), j.Remaining)
}

// onBlocked fires when all idle gangs were refused for the head job: retire
// the refused idle gangs (they are deadline-risky) and launch a fresh one.
func (s *Service) onBlocked(j *cluster.Job) {
	now := s.Engine.Now()
	sched := s.schedulerFor(now)
	for _, id := range s.Manager.NodeIDs() {
		if st, ok := s.Manager.State(id); !ok || st != cluster.NodeIdle {
			continue
		}
		if g, ok := s.gangs[id]; ok && !sched.ShouldReuse(g.OldestAge(now), j.Remaining) {
			s.retireGang(g)
		}
	}
	if _, err := s.launchGang(); err != nil {
		// Launching can only fail on catalog errors, which New validated.
		panic(err)
	}
}

// onGangIdle starts the hot-spare TTL for an idle gang.
func (s *Service) onGangIdle(node cluster.NodeID) {
	g, ok := s.gangs[node]
	if !ok {
		return
	}
	if s.cfg.HotSpareTTL == 0 {
		s.retireGang(g)
		return
	}
	g.spareTimer = s.Engine.AfterCall(s.cfg.HotSpareTTL, s.spareCb, g)
}

// drain terminates every remaining gang after the last job completes, in
// node-ID order so that cost accumulation is deterministic. The sort is a
// plain insertion sort: gang counts are small and sort.Slice's reflection
// machinery allocated on every teardown.
func (s *Service) drain() {
	ids := make([]cluster.NodeID, 0, len(s.gangs))
	for id := range s.gangs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
	for _, id := range ids {
		if g, ok := s.gangs[id]; ok && !g.retired {
			s.retireGang(g)
		}
	}
}
