package batch

import (
	"context"
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestProviderWarningFiresBeforePreemption(t *testing.T) {
	e := sim.NewEngine()
	p := cloud.NewProvider(e, 3, trace.Busy)
	p.WarningLead = cloud.DefaultWarningLead
	vm, err := p.Launch(trace.HighCPU16, trace.USEast1B, true)
	if err != nil {
		t.Fatal(err)
	}
	var warnedAt, preemptedAt float64 = -1, -1
	p.OnWarning(func(v *cloud.VM) {
		if v.ID == vm.ID {
			warnedAt = e.Now()
		}
	})
	p.OnPreemption(func(v *cloud.VM) {
		if v.ID == vm.ID {
			preemptedAt = e.Now()
		}
	})
	e.Run()
	if warnedAt < 0 || preemptedAt < 0 {
		t.Fatalf("warning %v / preemption %v not delivered", warnedAt, preemptedAt)
	}
	gap := preemptedAt - warnedAt
	if gap < 0 || gap > cloud.DefaultWarningLead+1e-9 {
		t.Fatalf("warning lead %v, want <= %v", gap, cloud.DefaultWarningLead)
	}
}

func TestProviderNoWarningAfterTerminate(t *testing.T) {
	e := sim.NewEngine()
	p := cloud.NewProvider(e, 3, trace.Busy)
	p.WarningLead = cloud.DefaultWarningLead
	vm, _ := p.Launch(trace.HighCPU16, trace.USEast1B, true)
	warned := false
	p.OnWarning(func(*cloud.VM) { warned = true })
	if err := p.Terminate(vm.ID); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if warned {
		t.Fatal("terminated VM must not warn")
	}
}

func TestWorkAtElapsed(t *testing.T) {
	sched := policy.Schedule{Intervals: []float64{1, 2, 3}}
	delta := 0.5
	cases := []struct{ elapsed, want float64 }{
		{0.4, 0.4}, // mid first segment
		{1.0, 1.0}, // segment boundary
		{1.2, 1.0}, // mid checkpoint write: no new work
		{1.5, 1.0}, // checkpoint done
		{2.5, 2.0}, // mid second segment
		{3.5, 3.0}, // second segment done
		{4.0, 3.0}, // second checkpoint done
		{5.5, 4.5}, // mid final segment
		{99, 6},    // past the end
	}
	for _, c := range cases {
		if got := workAtElapsed(sched, delta, c.elapsed); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("workAtElapsed(%v) = %v, want %v", c.elapsed, got, c.want)
		}
	}
}

func TestWarningCheckpointReducesMakespan(t *testing.T) {
	// With warning checkpoints, essentially no work is lost to
	// preemptions, so the bag's makespan cannot exceed the plain run's.
	run := func(warning bool) Report {
		cfg := baseConfig()
		cfg.Seed = 41
		cfg.Gangs = 2
		cfg.WarningCheckpoint = warning
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bag := workload.Bag{App: workload.Nanoconfinement}
		for i := 0; i < 12; i++ {
			bag.Jobs = append(bag.Jobs, workload.JobSpec{
				ID: "w" + jobSuffix(i), App: "nanoconfinement", Runtime: 4,
			})
		}
		if err := svc.SubmitBag(bag); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.JobsCompleted != 12 {
			t.Fatalf("completed %d", rep.JobsCompleted)
		}
		return rep
	}
	with := run(true)
	without := run(false)
	if with.Preemptions == 0 {
		t.Skip("no preemptions with this seed")
	}
	if with.Makespan > without.Makespan+1e-9 {
		t.Fatalf("warning checkpointing increased makespan: %v vs %v", with.Makespan, without.Makespan)
	}
}

func TestWarningCheckpointDeterministic(t *testing.T) {
	run := func() Report {
		cfg := baseConfig()
		cfg.WarningCheckpoint = true
		cfg.Seed = 77
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SubmitBag(workload.NewBag(workload.Shapes, 20, 0.02, 5)); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
