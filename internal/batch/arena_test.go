package batch

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestGetStatesZeroedAfterReuse primes the pool with a deliberately dirty
// block and checks the next borrower sees only zero values — the property
// the determinism guarantee rests on.
func TestGetStatesZeroedAfterReuse(t *testing.T) {
	blk := getStates(40)
	for i := range blk {
		blk[i].remaining = 99
		blk[i].attempts = 7
		blk[i].done = true
		blk[i].spec = workload.JobSpec{ID: "dirty", Runtime: 1}
	}
	putStates(blk)
	// Pools are per-P caches; a single Get on the same goroutine sees the
	// block just Put. Even if the runtime dropped it, a fresh block is
	// zeroed too, so the assertion holds either way.
	got := getStates(40)
	for i := range got {
		js := &got[i]
		if js.spec != (workload.JobSpec{}) || js.remaining != 0 || js.attempts != 0 ||
			js.done || js.schedule.Intervals != nil || js.cjob.OnComplete != nil {
			t.Fatalf("state %d not zeroed after reuse: %+v", i, *js)
		}
	}
	putStates(got)
}

func TestStateClassSizes(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 16}, {16, 16}, {17, 32}, {100, 128}, {4096, 4096},
	}
	for _, c := range cases {
		blk := getStates(c.n)
		if len(blk) != c.n {
			t.Fatalf("getStates(%d) len %d", c.n, len(blk))
		}
		if cap(blk) != c.wantCap {
			t.Fatalf("getStates(%d) cap %d, want %d", c.n, cap(blk), c.wantCap)
		}
		putStates(blk)
	}
	// Oversize blocks bypass the pool but must still be sized right.
	big := getStates(5000)
	if len(big) != 5000 {
		t.Fatalf("oversize len %d", len(big))
	}
	putStates(big)
}

// TestRecycledServiceByteIdenticalReport runs the same configuration twice,
// recycling the first service's state blocks in between, and requires the
// second run's report and job listing to be byte-identical: reuse must be
// invisible to results.
func TestRecycledServiceByteIdenticalReport(t *testing.T) {
	run := func() (Report, []JobStatus) {
		svc, err := New(baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		bag := workload.NewBag(workload.Nanoconfinement, 40, 0.05, 11)
		if err := svc.SubmitBag(bag); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		jobs := svc.JobStatuses()
		svc.Recycle()
		return rep, jobs
	}
	encode := func(rep Report, jobs []JobStatus) []byte {
		b, err := json.Marshal(struct {
			Report Report
			Jobs   []JobStatus
		}{rep, jobs})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	rep1, jobs1 := run()
	rep2, jobs2 := run() // second run draws the recycled blocks
	b1, b2 := encode(rep1, jobs1), encode(rep2, jobs2)
	if string(b1) != string(b2) {
		t.Fatalf("reports diverged across recycle:\nfirst:  %s\nsecond: %s", b1, b2)
	}
}

// TestRecycleDropsReferences checks a recycled service no longer pins its
// job states (accessors see an empty service rather than stale data).
func TestRecycleDropsReferences(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(workload.NewBag(workload.Shapes, 20, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Recycle()
	if n := len(svc.JobStatuses()); n != 0 {
		t.Fatalf("recycled service still lists %d jobs", n)
	}
	if svc.jobs != nil || svc.stateBlocks != nil || svc.running != nil {
		t.Fatal("recycle left references to pooled state")
	}
}
