package batch

// Progress is a point-in-time snapshot of a running service: the virtual
// clock, job completion counts, and cost accrued so far. Snapshots are
// plain values — safe to hand across goroutines — and are delivered through
// Service.OnProgress so a session manager can report live status without
// touching the (single-goroutine) simulation state.
type Progress struct {
	// VirtualHours is the engine's current virtual time.
	VirtualHours float64 `json:"virtual_hours"`
	// JobsDone / JobsTotal count completed and submitted jobs.
	JobsDone  int `json:"jobs_done"`
	JobsTotal int `json:"jobs_total"`
	// CostSoFar is the provider's accrued cost in USD, including the
	// running cost of live VMs.
	CostSoFar float64 `json:"cost_so_far_usd"`
	// Preemptions counts VM preemptions observed so far.
	Preemptions int `json:"preemptions"`
	// ActiveGangs is the number of live gangs.
	ActiveGangs int `json:"active_gangs"`
	// EngineSteps is the number of events processed by the engine.
	EngineSteps int64 `json:"engine_steps"`
}

// Progress returns the current snapshot. It must be called from the
// goroutine driving the service (Run calls it on behalf of OnProgress).
func (s *Service) Progress() Progress {
	return Progress{
		VirtualHours: s.Engine.Now(),
		JobsDone:     len(s.jobs) - s.remaining,
		JobsTotal:    len(s.jobs),
		CostSoFar:    s.Provider.TotalCost(),
		Preemptions:  s.Provider.Preemptions(),
		ActiveGangs:  len(s.gangs),
		EngineSteps:  s.Engine.Steps(),
	}
}
