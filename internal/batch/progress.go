package batch

// Progress is a point-in-time snapshot of a running service: the virtual
// clock, job completion counts, cost accrued so far, and per-job-class
// summaries. Snapshots are plain values — safe to hand across goroutines —
// and are delivered through Service.OnSnapshot so a session manager can
// report live status without touching the (single-goroutine) simulation
// state.
type Progress struct {
	// VirtualHours is the engine's current virtual time.
	VirtualHours float64 `json:"virtual_hours"`
	// JobsDone / JobsTotal count completed and submitted jobs.
	JobsDone  int `json:"jobs_done"`
	JobsTotal int `json:"jobs_total"`
	// CostSoFar is the provider's accrued cost in USD, including the
	// running cost of live VMs.
	CostSoFar float64 `json:"cost_so_far_usd"`
	// Preemptions counts VM preemptions observed so far.
	Preemptions int `json:"preemptions"`
	// ActiveGangs is the number of live gangs.
	ActiveGangs int `json:"active_gangs"`
	// EngineSteps is the number of events processed by the engine.
	EngineSteps int64 `json:"engine_steps"`
	// Classes summarizes the jobs per application class (in first-submission
	// order), so clients can watch heterogeneous bags drain without asking
	// for the full per-job listing.
	Classes []ClassProgress `json:"classes,omitempty"`
}

// ClassProgress aggregates one application class's jobs inside a Progress
// snapshot.
type ClassProgress struct {
	App       string `json:"app"`
	JobsTotal int    `json:"jobs_total"`
	JobsDone  int    `json:"jobs_done"`
	Attempts  int    `json:"attempts"`
	Failures  int    `json:"failures"`
	// RemainingHours is the work (not wall time) still to do across the
	// class's unfinished jobs, after checkpoint recovery.
	RemainingHours float64 `json:"remaining_hours"`
}

// VMInfo describes one live VM in a snapshot. It doubles as the HTTP wire
// form of the sessions' VM listing.
type VMInfo struct {
	ID          string  `json:"id"`
	Type        string  `json:"type"`
	Zone        string  `json:"zone"`
	Preemptible bool    `json:"preemptible"`
	AgeHours    float64 `json:"age_hours"`
}

// Snapshot is the full mid-run observation the service publishes through
// OnSnapshot: the compact Progress plus the per-job statuses and live VM
// listing at the same instant. Everything in it is deep-copied value data,
// so observers on other goroutines can hold it indefinitely.
type Snapshot struct {
	Progress Progress    `json:"progress"`
	Jobs     []JobStatus `json:"jobs"`
	VMs      []VMInfo    `json:"vms"`
}

// Progress returns the current compact snapshot. It must be called from the
// goroutine driving the service (Run calls it on behalf of OnSnapshot).
// Per-class summaries are maintained incrementally as jobs are submitted,
// complete, and fail, so this is O(classes), not O(jobs) — cheap enough for
// every progress interval of a large session.
func (s *Service) Progress() Progress {
	// Snapshots are handed across goroutines and may be held indefinitely,
	// so the published class slice must never be mutated again. Instead of
	// copying on every interval, the last published copy is reused until a
	// class actually changes (classesGen ticks on every mutation): between
	// changes, consecutive snapshots share one immutable slice. The
	// incremental remaining-hours accounting can drift a few ULPs below
	// zero on a fully-drained class; clamp so the wire never reports
	// negative work.
	classes := s.classesSnap
	if s.classesSnapGen != s.classesGen || classes == nil {
		classes = append([]ClassProgress(nil), s.classes...)
		for i := range classes {
			if classes[i].RemainingHours < 0 {
				classes[i].RemainingHours = 0
			}
		}
		s.classesSnap = classes
		s.classesSnapGen = s.classesGen
	}
	return Progress{
		VirtualHours: s.Engine.Now(),
		JobsDone:     len(s.jobs) - s.remaining,
		JobsTotal:    len(s.jobs),
		CostSoFar:    s.Provider.TotalCost(),
		Preemptions:  s.Provider.Preemptions(),
		ActiveGangs:  len(s.gangs),
		EngineSteps:  s.Engine.Steps(),
		Classes:      classes,
	}
}

// VMInfos lists the live VMs in node-launch order (the provider's running
// set is already deterministic). It must be called from the goroutine
// driving the service.
func (s *Service) VMInfos() []VMInfo {
	running := s.Provider.Running()
	out := make([]VMInfo, 0, len(running))
	now := s.Engine.Now()
	for _, vm := range running {
		out = append(out, VMInfo{
			ID:          vm.ID,
			Type:        string(vm.Type),
			Zone:        string(vm.Zone),
			Preemptible: vm.Preemptible,
			AgeHours:    vm.Age(now),
		})
	}
	return out
}

// Snapshot returns the full observation (progress + jobs + VMs). It must be
// called from the goroutine driving the service.
func (s *Service) Snapshot() Snapshot {
	return Snapshot{
		Progress: s.Progress(),
		Jobs:     s.JobStatuses(),
		VMs:      s.VMInfos(),
	}
}
