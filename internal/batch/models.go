package batch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

// The paper's service "parametrizes the bathtub model based on the VM
// type, region, time-of-day, and day-of-week" (Section 5). A Config may
// carry a core.Registry of models keyed by ModelKey; the scheduler then
// consults the model matching the conditions at decision time, falling
// back to Config.Model when no environment-specific model is registered.

// ModelKey is the registry key for one preemption environment.
func ModelKey(vt trace.VMType, zone trace.Zone, tod trace.TimeOfDay) string {
	return fmt.Sprintf("%s|%s|%s", vt, zone, tod)
}

// FitStudyModels fits a model for each time-of-day variant of the given VM
// type and zone from freshly generated study data, returning a registry the
// service can use directly.
func FitStudyModels(vt trace.VMType, zone trace.Zone, samples int, seed uint64) (*core.Registry, error) {
	reg := core.NewRegistry()
	for i, tod := range []trace.TimeOfDay{trace.Day, trace.Night} {
		sc := trace.Scenario{Type: vt, Zone: zone, TimeOfDay: tod, Workload: trace.Busy}
		m, _, err := core.Fit(trace.Generate(sc, samples, seed+uint64(i)*7919), trace.Deadline)
		if err != nil {
			return nil, fmt.Errorf("batch: fitting %s model: %w", tod, err)
		}
		reg.Put(ModelKey(vt, zone, tod), m)
	}
	return reg, nil
}

// modelFor returns the model matching the current simulation conditions.
func (s *Service) modelFor(now float64) *core.Model {
	if s.cfg.Models != nil {
		tod := trace.Day
		h := now - 24*float64(int(now/24))
		if h < 8 || h >= 20 {
			tod = trace.Night
		}
		if m, ok := s.cfg.Models.Get(ModelKey(s.cfg.VMType, s.cfg.Zone, tod)); ok {
			return m
		}
	}
	return s.cfg.Model
}

// schedulerFor returns the reuse policy for the model active at the given
// time, from the process-wide schedule cache: every session consulting the
// same model parameters shares one scheduler.
func (s *Service) schedulerFor(now float64) *policy.ModelScheduler {
	return policy.SharedScheduler(s.modelFor(now), policy.MinimizeFailure)
}
