package batch

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestAPI() *API {
	return NewAPI(func() (*Service, error) {
		cfg := baseConfig()
		cfg.Gangs = 3
		return New(cfg)
	})
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			// Some endpoints return arrays; the caller inspects rec itself.
			return rec, nil
		}
	}
	return rec, out
}

func TestAPIFullFlow(t *testing.T) {
	h := newTestAPI().Handler()

	rec, out := doJSON(t, h, "POST", "/api/bags",
		map[string]any{"app": "shapes", "jobs": 20, "jitter": 0.02, "seed": 4})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	if out["submitted"].(float64) != 20 {
		t.Fatalf("submitted = %v", out["submitted"])
	}

	rec, out = doJSON(t, h, "POST", "/api/run", map[string]any{})
	if rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body)
	}
	if out["jobs_completed"].(float64) != 20 {
		t.Fatalf("jobs_completed = %v", out["jobs_completed"])
	}
	if out["total_cost_usd"].(float64) <= 0 {
		t.Fatalf("cost = %v", out["total_cost_usd"])
	}

	rec, out = doJSON(t, h, "GET", "/api/report", nil)
	if rec.Code != http.StatusOK || out["jobs_completed"].(float64) != 20 {
		t.Fatalf("report: %d %v", rec.Code, out)
	}

	rec, _ = doJSON(t, h, "GET", "/api/jobs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("jobs: %d", rec.Code)
	}
	var jobs []JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Fatalf("jobs = %d", len(jobs))
	}

	rec, out = doJSON(t, h, "GET", "/api/status", nil)
	if rec.Code != http.StatusOK || out["ran"] != true {
		t.Fatalf("status: %d %v", rec.Code, out)
	}
}

func TestAPIRejectsBadRequests(t *testing.T) {
	h := newTestAPI().Handler()

	rec, _ := doJSON(t, h, "POST", "/api/bags", map[string]any{"app": "doom", "jobs": 5})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown app: %d", rec.Code)
	}
	rec, _ = doJSON(t, h, "POST", "/api/bags", map[string]any{"app": "shapes", "jobs": 0})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("zero jobs: %d", rec.Code)
	}
	rec, _ = doJSON(t, h, "POST", "/api/run", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("run without bag: %d", rec.Code)
	}
}

func TestAPIDoubleRunConflicts(t *testing.T) {
	h := newTestAPI().Handler()
	doJSON(t, h, "POST", "/api/bags", map[string]any{"app": "shapes", "jobs": 5, "seed": 1})
	rec, _ := doJSON(t, h, "POST", "/api/run", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("first run: %d", rec.Code)
	}
	rec, _ = doJSON(t, h, "POST", "/api/run", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("second run: %d", rec.Code)
	}
	rec, _ = doJSON(t, h, "POST", "/api/bags", map[string]any{"app": "shapes", "jobs": 5, "seed": 2})
	if rec.Code != http.StatusConflict {
		t.Fatalf("submit after run: %d", rec.Code)
	}
}

func TestAPIVMsEndpoint(t *testing.T) {
	h := newTestAPI().Handler()
	// Before any service exists: empty list.
	rec, _ := doJSON(t, h, "GET", "/api/vms", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("vms: %d", rec.Code)
	}
	var vms []vmJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &vms); err != nil {
		t.Fatal(err)
	}
	if len(vms) != 0 {
		t.Fatalf("vms before run = %d", len(vms))
	}
	// After a run the cluster is drained, so the list is empty again; the
	// endpoint's real use is mid-run inspection, exercised via the service
	// directly in service tests.
	doJSON(t, h, "POST", "/api/bags", map[string]any{"app": "shapes", "jobs": 5, "seed": 1})
	doJSON(t, h, "POST", "/api/run", nil)
	rec, _ = doJSON(t, h, "GET", "/api/vms", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("vms after run: %d", rec.Code)
	}
}

func TestAPIEstimateEndpoint(t *testing.T) {
	h := newTestAPI().Handler()
	rec, out := doJSON(t, h, "POST", "/api/estimate",
		map[string]any{"app": "nanoconfinement", "jobs": 50, "seed": 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate: %d %s", rec.Code, rec.Body)
	}
	if out["expected_makespan_hours"].(float64) < out["ideal_makespan_hours"].(float64) {
		t.Fatal("expected makespan below ideal")
	}
	if out["expected_cost_usd"].(float64) <= 0 {
		t.Fatal("cost")
	}
	rec, _ = doJSON(t, h, "POST", "/api/estimate", map[string]any{"app": "doom", "jobs": 1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad app: %d", rec.Code)
	}
	rec, _ = doJSON(t, h, "POST", "/api/estimate", map[string]any{"app": "shapes", "jobs": 0})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("zero jobs: %d", rec.Code)
	}
}

func TestAPIReportBeforeRun(t *testing.T) {
	h := newTestAPI().Handler()
	rec, _ := doJSON(t, h, "GET", "/api/report", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("report before run: %d", rec.Code)
	}
	rec, _ = doJSON(t, h, "GET", "/api/jobs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("jobs before run: %d", rec.Code)
	}
}
