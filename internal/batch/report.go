package batch

import (
	"fmt"
	"math"

	"repro/internal/cloud"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Report summarizes one service run: the measurements behind Figures 9a/9b.
// The JSON keys match the HTTP report endpoint's wire format.
type Report struct {
	JobsCompleted int     `json:"jobs_completed"`
	JobFailures   int     `json:"job_failures"` // preemption-induced job failures (attempts - completions)
	Preemptions   int     `json:"preemptions"`  // VM preemptions observed
	TotalCost     float64 `json:"total_cost_usd"`
	CostPerJob    float64 `json:"cost_per_job"`
	Makespan      float64 `json:"makespan_hours"` // submission to last completion
	// IdealMakespan is the zero-preemption, zero-overhead lower bound:
	// total work divided by the number of gangs.
	IdealMakespan float64 `json:"ideal_makespan"`
	// IncreasePct is 100*(Makespan-IdealMakespan)/IdealMakespan.
	IncreasePct float64 `json:"increase_pct"`
	// MeanAttempts is the average number of attempts per job.
	MeanAttempts float64 `json:"mean_attempts"`
	// TraceID links the report back to the request trace that created its
	// session (GET /api/trace/{id}), when the session arrived through the
	// traced HTTP edge. The serving layer sets it before the report is
	// persisted, so a restored session's report carries the same trace.
	TraceID string `json:"trace_id,omitempty"`
}

func (s *Service) report() Report {
	r := Report{
		Preemptions: s.Provider.Preemptions(),
		TotalCost:   s.Provider.TotalCost(),
		Makespan:    s.finishedAt - s.startedAt,
	}
	var work float64
	var attempts int
	for _, id := range s.jobOrder {
		js := s.jobs[id]
		if js.done {
			r.JobsCompleted++
		}
		r.JobFailures += js.failures
		work += js.spec.Runtime
		attempts += js.attempts
	}
	if r.JobsCompleted > 0 {
		r.CostPerJob = r.TotalCost / float64(r.JobsCompleted)
		r.MeanAttempts = float64(attempts) / float64(r.JobsCompleted)
	}
	r.IdealMakespan = work / float64(s.cfg.Gangs)
	if r.IdealMakespan > 0 {
		r.IncreasePct = 100 * (r.Makespan - r.IdealMakespan) / r.IdealMakespan
	}
	return r
}

func (r Report) String() string {
	return fmt.Sprintf(
		"report{jobs=%d failures=%d preemptions=%d cost=$%.2f ($%.4f/job) makespan=%.2fh (+%.1f%% over ideal %.2fh)}",
		r.JobsCompleted, r.JobFailures, r.Preemptions, r.TotalCost, r.CostPerJob,
		r.Makespan, r.IncreasePct, r.IdealMakespan)
}

// Jobs returns per-job status for the API.
type JobStatus struct {
	ID        string  `json:"id"`
	App       string  `json:"app"`
	Runtime   float64 `json:"runtime_hours"`
	Remaining float64 `json:"remaining_hours"`
	Attempts  int     `json:"attempts"`
	Failures  int     `json:"failures"`
	Done      bool    `json:"done"`
	DoneAt    float64 `json:"done_at_hours,omitempty"`
}

// JobStatuses returns the status of every job in submission order.
func (s *Service) JobStatuses() []JobStatus {
	out := make([]JobStatus, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		js := s.jobs[id]
		out = append(out, JobStatus{
			ID:        js.spec.ID,
			App:       js.spec.App,
			Runtime:   js.spec.Runtime,
			Remaining: js.remaining,
			Attempts:  js.attempts,
			Failures:  js.failures,
			Done:      js.done,
			DoneAt:    js.doneAt,
		})
	}
	return out
}

// RemainingJobs returns the number of unfinished jobs.
func (s *Service) RemainingJobs() int { return s.remaining }

// ActiveGangs returns the number of live gangs.
func (s *Service) ActiveGangs() int { return len(s.gangs) }

// Estimate is an a-priori prediction for a bag, computed from the model
// before anything runs ("users and transient computing systems can use the
// expected running time analysis for scheduling and monitoring purposes",
// Section 4.1).
type Estimate struct {
	// IdealMakespan is total work / gangs with no failures or overheads.
	IdealMakespan float64
	// ExpectedMakespan scales the ideal by the per-job expected slowdown
	// under multi-failure restart semantics on a fresh VM.
	ExpectedMakespan float64
	// PerJobFailureProb is the fresh-VM failure probability of the bag's
	// mean-length job.
	PerJobFailureProb float64
	// ExpectedCost prices ExpectedMakespan across the cluster.
	ExpectedCost float64
}

// Estimate predicts the bag's makespan and cost under this service's
// configuration without running it.
func (s *Service) Estimate(bag workload.Bag) (Estimate, error) {
	cfg := s.cfg
	if cfg.Model == nil && cfg.Models != nil {
		// Use the day model for a-priori quotes when only a registry is
		// configured.
		if m, ok := cfg.Models.Get(ModelKey(cfg.VMType, cfg.Zone, trace.Day)); ok {
			cfg.Model = m
		}
	}
	return EstimateBag(cfg, bag)
}

// EstimateBag predicts a bag's makespan and cost for the given
// configuration without running it. It returns an error when the config
// carries no model or the bag is empty.
func EstimateBag(cfg Config, bag workload.Bag) (Estimate, error) {
	if cfg.Model == nil {
		return Estimate{}, fmt.Errorf("batch: estimation requires a model")
	}
	if len(bag.Jobs) == 0 {
		return Estimate{}, fmt.Errorf("batch: empty bag")
	}
	if cfg.Gangs <= 0 || cfg.GangSize <= 0 {
		return Estimate{}, fmt.Errorf("batch: invalid cluster shape")
	}
	mean := bag.MeanRuntime()
	slowdown := 1.0
	if cfg.Preemptible {
		em := cfg.Model.ExpectedMakespanMultiFailure(mean)
		if math.IsInf(em, 1) {
			return Estimate{}, fmt.Errorf("batch: job length %vh cannot complete before the deadline", mean)
		}
		slowdown = em / mean
	}
	e := Estimate{
		IdealMakespan: bag.TotalWork() / float64(cfg.Gangs),
	}
	e.ExpectedMakespan = e.IdealMakespan * slowdown
	if cfg.Preemptible {
		e.PerJobFailureProb = cfg.Model.ConditionalFailure(0, mean)
	}
	it, err := cloud.Lookup(cfg.VMType)
	if err != nil {
		return Estimate{}, err
	}
	rate := it.OnDemandPerHour
	if cfg.Preemptible {
		rate = it.PreemptiblePerHour
	}
	e.ExpectedCost = rate * float64(cfg.Gangs*cfg.GangSize) * e.ExpectedMakespan
	return e, nil
}
