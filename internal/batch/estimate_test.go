package batch

import (
	"context"
	"math"
	"testing"

	"repro/internal/workload"
)

func TestEstimateBagBasics(t *testing.T) {
	cfg := baseConfig()
	bag := workload.NewBag(workload.Nanoconfinement, 40, 0.02, 3)
	est, err := EstimateBag(cfg, bag)
	if err != nil {
		t.Fatal(err)
	}
	wantIdeal := bag.TotalWork() / float64(cfg.Gangs)
	if math.Abs(est.IdealMakespan-wantIdeal) > 1e-12 {
		t.Fatalf("ideal = %v, want %v", est.IdealMakespan, wantIdeal)
	}
	if est.ExpectedMakespan < est.IdealMakespan {
		t.Fatal("expected makespan below ideal")
	}
	if est.PerJobFailureProb <= 0 || est.PerJobFailureProb >= 1 {
		t.Fatalf("failure prob = %v", est.PerJobFailureProb)
	}
	if est.ExpectedCost <= 0 {
		t.Fatalf("cost = %v", est.ExpectedCost)
	}
}

func TestEstimateOnDemandNoSlowdown(t *testing.T) {
	cfg := baseConfig()
	cfg.Preemptible = false
	bag := workload.NewBag(workload.Shapes, 10, 0, 1)
	est, err := EstimateBag(cfg, bag)
	if err != nil {
		t.Fatal(err)
	}
	if est.ExpectedMakespan != est.IdealMakespan {
		t.Fatal("on-demand estimate must have no slowdown")
	}
	if est.PerJobFailureProb != 0 {
		t.Fatal("on-demand jobs cannot be preempted")
	}
}

func TestEstimatePredictsActualRun(t *testing.T) {
	// The a-priori estimate should land in the right ballpark of a real
	// simulated run (within a factor of ~1.5 either way for short jobs).
	cfg := baseConfig()
	cfg.Seed = 19
	bag := workload.NewBag(workload.Nanoconfinement, 60, 0.02, 7)
	est, err := EstimateBag(cfg, bag)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(bag); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ratio := rep.Makespan / est.ExpectedMakespan
	if ratio < 0.5 || ratio > 1.6 {
		t.Fatalf("actual %vh vs estimate %vh (ratio %v)", rep.Makespan, est.ExpectedMakespan, ratio)
	}
}

func TestEstimateErrors(t *testing.T) {
	cfg := baseConfig()
	bag := workload.NewBag(workload.Shapes, 5, 0, 1)
	noModel := cfg
	noModel.Model = nil
	if _, err := EstimateBag(noModel, bag); err == nil {
		t.Fatal("no model accepted")
	}
	if _, err := EstimateBag(cfg, workload.Bag{}); err == nil {
		t.Fatal("empty bag accepted")
	}
	badShape := cfg
	badShape.Gangs = 0
	if _, err := EstimateBag(badShape, bag); err == nil {
		t.Fatal("bad shape accepted")
	}
	// A bag of deadline-length jobs cannot be estimated.
	huge := workload.Bag{App: workload.Shapes, Jobs: []workload.JobSpec{{ID: "x", Runtime: 25}}}
	if _, err := EstimateBag(cfg, huge); err == nil {
		t.Fatal("infeasible bag accepted")
	}
}
