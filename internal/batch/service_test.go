package batch

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testModel() *core.Model {
	return core.New(dist.NewBathtub(0.45, 1.0, 0.8, 24, 24))
}

func baseConfig() Config {
	return Config{
		VMType:         trace.HighCPU16,
		Zone:           trace.USEast1B,
		Gangs:          4,
		GangSize:       1,
		Preemptible:    true,
		HotSpareTTL:    1,
		Model:          testModel(),
		UseReusePolicy: true,
		Seed:           7,
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	bag := workload.NewBag(workload.Nanoconfinement, 40, 0.02, 3)
	if err := svc.SubmitBag(bag); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 40 {
		t.Fatalf("completed %d of 40", rep.JobsCompleted)
	}
	if rep.Makespan <= 0 {
		t.Fatalf("makespan = %v", rep.Makespan)
	}
	if rep.TotalCost <= 0 {
		t.Fatalf("cost = %v", rep.TotalCost)
	}
	if svc.RemainingJobs() != 0 {
		t.Fatal("jobs remaining after Run")
	}
	if svc.ActiveGangs() != 0 {
		t.Fatalf("gangs still active after drain: %d", svc.ActiveGangs())
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Report {
		svc, err := New(baseConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SubmitBag(workload.NewBag(workload.Shapes, 25, 0.02, 5)); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestPreemptibleMuchCheaperThanOnDemand(t *testing.T) {
	// Figure 9a: our service on preemptible VMs is ~5x cheaper per job
	// than on-demand, with identical workloads.
	runWith := func(preemptible bool) Report {
		cfg := baseConfig()
		cfg.Preemptible = preemptible
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SubmitBag(workload.NewBag(workload.Nanoconfinement, 50, 0.02, 11)); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.JobsCompleted != 50 {
			t.Fatalf("completed %d", rep.JobsCompleted)
		}
		return rep
	}
	pre := runWith(true)
	od := runWith(false)
	ratio := od.CostPerJob / pre.CostPerJob
	if ratio < 3 || ratio > 6 {
		t.Fatalf("cost ratio %v (od $%v vs pre $%v), want ~4.7x", ratio, od.CostPerJob, pre.CostPerJob)
	}
	if od.Preemptions != 0 {
		t.Fatalf("on-demand run saw %d preemptions", od.Preemptions)
	}
}

func TestFailuresAreRetried(t *testing.T) {
	// With long jobs on small VMs preemptions are common; every failure
	// must be retried until completion.
	cfg := baseConfig()
	cfg.Seed = 13
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3-hour jobs totalling 180 VM-hours: the cluster must cycle through
	// several gang generations, so preemptions are essentially certain.
	bag := workload.Bag{App: workload.Nanoconfinement}
	for i := 0; i < 60; i++ {
		bag.Jobs = append(bag.Jobs, workload.JobSpec{
			ID: bag.App.Name + jobSuffix(i), App: bag.App.Name, Runtime: 3,
		})
	}
	if err := svc.SubmitBag(bag); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 60 {
		t.Fatalf("completed %d", rep.JobsCompleted)
	}
	if rep.Preemptions == 0 {
		t.Fatal("expected some preemptions with 180 VM-hours of work")
	}
	if rep.JobFailures == 0 {
		t.Fatal("expected job failures given preemptions")
	}
	if rep.MeanAttempts <= 1 {
		t.Fatalf("mean attempts %v", rep.MeanAttempts)
	}
}

func jobSuffix(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestGangSizing(t *testing.T) {
	if g := GangSizeFor(workload.Nanoconfinement, trace.HighCPU16); g != 4 {
		t.Fatalf("nanoconfinement on hc16 needs %d VMs, want 4", g)
	}
	if g := GangSizeFor(workload.Nanoconfinement, trace.HighCPU32); g != 2 {
		t.Fatalf("on hc32: %d, want 2", g)
	}
	if g := GangSizeFor(workload.LULESH, trace.HighCPU8); g != 8 {
		t.Fatalf("lulesh on hc8: %d, want 8", g)
	}
}

func TestGangRunCostScalesWithSize(t *testing.T) {
	runWith := func(gangSize int) Report {
		cfg := baseConfig()
		cfg.GangSize = gangSize
		cfg.Gangs = 2
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.SubmitBag(workload.NewBag(workload.Shapes, 20, 0, 9)); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small := runWith(1)
	big := runWith(4)
	// 4 VMs per gang cost roughly 4x as much per job (more with extra
	// preemption exposure).
	ratio := big.CostPerJob / small.CostPerJob
	if ratio < 3 || ratio > 8 {
		t.Fatalf("gang cost ratio %v", ratio)
	}
}

func TestCheckpointingReducesLostWork(t *testing.T) {
	// With checkpointing enabled, failures recover progress, so mean
	// attempts can stay the same but the makespan shrinks for long jobs.
	run := func(delta float64) Report {
		cfg := baseConfig()
		cfg.Gangs = 2
		cfg.Seed = 31
		cfg.CheckpointDelta = delta
		cfg.CheckpointStep = 5.0 / 60
		svc, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bag := workload.Bag{App: workload.Nanoconfinement}
		for i := 0; i < 12; i++ {
			bag.Jobs = append(bag.Jobs, workload.JobSpec{
				ID: "job" + jobSuffix(i), App: "nanoconfinement", Runtime: 4,
			})
		}
		if err := svc.SubmitBag(bag); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.JobsCompleted != 12 {
			t.Fatalf("completed %d", rep.JobsCompleted)
		}
		return rep
	}
	with := run(1.0 / 60)
	without := run(0)
	if with.Preemptions == 0 && without.Preemptions == 0 {
		t.Skip("no preemptions in either run; cannot compare recovery")
	}
	// Checkpointing must not make things dramatically worse; with 48
	// VM-hours of 4h jobs it should help.
	if with.Makespan > without.Makespan*1.1 {
		t.Fatalf("checkpointing hurt: %v vs %v hours", with.Makespan, without.Makespan)
	}
}

func TestRecoveredWorkMapping(t *testing.T) {
	sched := policy.Schedule{Intervals: []float64{1, 2, 3}}
	delta := 0.5
	cases := []struct {
		elapsed float64
		want    float64
	}{
		{0.5, 0}, // mid first segment
		{1.0, 0}, // reached checkpoint boundary but checkpoint not written
		{1.5, 1}, // first checkpoint written at 1+0.5
		{3.4, 1}, // mid second segment
		{4.0, 3}, // second checkpoint written at 1+0.5+2+0.5
		{7.0, 3}, // final segment has no checkpoint
	}
	for _, c := range cases {
		if got := recoveredWork(sched, delta, c.elapsed); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("recoveredWork(%v) = %v, want %v", c.elapsed, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Gangs = 0 },
		func(c *Config) { c.GangSize = 0 },
		func(c *Config) { c.VMType = "bogus" },
		func(c *Config) { c.Model = nil }, // reuse policy without model
		func(c *Config) { c.HotSpareTTL = -1 },
		func(c *Config) { c.Model = nil; c.UseReusePolicy = false; c.CheckpointDelta = 0.1 },
	}
	for i, mod := range bad {
		cfg := baseConfig()
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(workload.Bag{}); err == nil {
		t.Fatal("empty bag accepted")
	}
	bag := workload.NewBag(workload.Shapes, 3, 0, 1)
	if err := svc.SubmitBag(bag); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(bag); err == nil {
		t.Fatal("duplicate jobs accepted")
	}
	badBag := workload.Bag{Jobs: []workload.JobSpec{{ID: "x", Runtime: 0}}}
	if err := svc.SubmitBag(badBag); err == nil {
		t.Fatal("zero-runtime job accepted")
	}
}

func TestDeferredBagArrival(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := workload.NewBag(workload.Shapes, 8, 0, 1)
	if err := svc.SubmitBag(first); err != nil {
		t.Fatal(err)
	}
	second := workload.Bag{App: workload.Shapes}
	for i := 0; i < 8; i++ {
		second.Jobs = append(second.Jobs, workload.JobSpec{
			ID: "late" + jobSuffix(i), App: "shapes", Runtime: workload.Shapes.JobRuntime,
		})
	}
	const gap = 3.0
	if err := svc.SubmitBagAt(second, gap); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 16 {
		t.Fatalf("completed %d", rep.JobsCompleted)
	}
	// The run cannot finish before the second bag arrived and ran.
	if rep.Makespan < gap {
		t.Fatalf("makespan %v ends before the deferred arrival", rep.Makespan)
	}
	// Every late job completed after the gap.
	for _, st := range svc.JobStatuses() {
		if len(st.ID) >= 4 && st.ID[:4] == "late" && st.DoneAt < gap {
			t.Fatalf("late job %s done at %v, before arrival", st.ID, st.DoneAt)
		}
	}
}

func TestSubmitBagAtValidation(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBagAt(workload.NewBag(workload.Shapes, 2, 0, 1), -1); err == nil {
		t.Fatal("negative arrival accepted")
	}
}

func TestRunWithoutJobs(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background()); err == nil {
		t.Fatal("Run without jobs should error")
	}
}

func TestJobStatuses(t *testing.T) {
	svc, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	bag := workload.NewBag(workload.LULESH, 5, 0.01, 2)
	if err := svc.SubmitBag(bag); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sts := svc.JobStatuses()
	if len(sts) != 5 {
		t.Fatalf("statuses = %d", len(sts))
	}
	for _, st := range sts {
		if !st.Done || st.Remaining != 0 || st.Attempts < 1 {
			t.Fatalf("bad status %+v", st)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{JobsCompleted: 3, TotalCost: 1.5, Makespan: 2}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}

// TestClassProgressIncrementalConsistency runs a two-class workload with
// checkpointing (so failures and partial recovery exercise every counter
// path) and checks the incrementally-maintained per-class summaries agree
// with the per-job ground truth at the end.
func TestClassProgressIncrementalConsistency(t *testing.T) {
	cfg := baseConfig()
	cfg.CheckpointDelta = 0.05
	cfg.CheckpointStep = 0.25
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(workload.NewBag(workload.Nanoconfinement, 25, 0.02, 3)); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitBag(workload.NewBag(workload.Shapes, 15, 0.02, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p := svc.Progress()
	if len(p.Classes) != 2 {
		t.Fatalf("classes = %+v, want 2", p.Classes)
	}
	// Recompute ground truth from the job statuses.
	truth := map[string]*ClassProgress{}
	for _, js := range svc.JobStatuses() {
		c := truth[js.App]
		if c == nil {
			c = &ClassProgress{App: js.App}
			truth[js.App] = c
		}
		c.JobsTotal++
		c.Attempts += js.Attempts
		c.Failures += js.Failures
		if js.Done {
			c.JobsDone++
		} else {
			c.RemainingHours += js.Remaining
		}
	}
	for _, got := range p.Classes {
		want := truth[got.App]
		if want == nil {
			t.Fatalf("unexpected class %q", got.App)
		}
		if got.JobsTotal != want.JobsTotal || got.JobsDone != want.JobsDone ||
			got.Attempts != want.Attempts || got.Failures != want.Failures {
			t.Fatalf("class %s diverged: got %+v want %+v", got.App, got, *want)
		}
		if math.Abs(got.RemainingHours-want.RemainingHours) > 1e-6 {
			t.Fatalf("class %s remaining %v, want %v", got.App, got.RemainingHours, want.RemainingHours)
		}
	}
}
