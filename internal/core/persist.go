package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dist"
)

// Model persistence: a long-running service refits models from recent
// preemption history and must persist them across restarts (Section 8's
// "continuously update the model"). Models serialize as their Equation 1
// parameters; registries as a key -> parameters map.

// modelJSON is the wire form of a fitted model.
type modelJSON struct {
	A    float64 `json:"a"`
	Tau1 float64 `json:"tau1"`
	Tau2 float64 `json:"tau2"`
	B    float64 `json:"b"`
	L    float64 `json:"l"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	bt := m.bt
	return json.Marshal(modelJSON{A: bt.A, Tau1: bt.Tau1, Tau2: bt.Tau2, B: bt.B, L: bt.L})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var mj modelJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("core: decoding model: %w", err)
	}
	if mj.A <= 0 || mj.Tau1 <= 0 || mj.Tau2 <= 0 || mj.B <= 0 || mj.L <= 0 {
		return fmt.Errorf("core: decoded model has non-positive parameters: %+v", mj)
	}
	bt := dist.NewBathtub(mj.A, mj.Tau1, mj.Tau2, mj.B, mj.L)
	if !(bt.Raw(bt.L) > 0) {
		return fmt.Errorf("core: decoded model has no mass before its deadline")
	}
	// Copy fields individually: Model embeds an atomic table cache that
	// must not be copied by value.
	nm := New(bt)
	m.bt, m.norm = nm.bt, nm.norm
	m.qt.Store(nil)
	return nil
}

// SaveRegistry writes all models of r as one JSON document.
func SaveRegistry(r *Registry, w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.models); err != nil {
		return fmt.Errorf("core: encoding registry: %w", err)
	}
	return nil
}

// LoadRegistry reads a registry written by SaveRegistry.
func LoadRegistry(rd io.Reader) (*Registry, error) {
	var raw map[string]*Model
	if err := json.NewDecoder(rd).Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding registry: %w", err)
	}
	out := NewRegistry()
	for k, m := range raw {
		if m == nil {
			return nil, fmt.Errorf("core: registry entry %q is null", k)
		}
		out.Put(k, m)
	}
	return out, nil
}
