// Package core implements the paper's primary contribution: the
// constrained-preemption probability model (Section 3.2) and the running
// time analysis built on it (Section 4.1, Equations 3-8). A Model wraps the
// fitted bathtub distribution (Equation 1) and answers the questions
// policies need: preemption probabilities, expected wasted work, expected
// makespans for jobs starting at arbitrary VM ages, and the three
// preemption phases.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dist"
	"repro/internal/fit"
	"repro/internal/mathx"
)

// Model is a fitted constrained-preemption model for one VM environment.
// It is immutable and safe for concurrent use.
type Model struct {
	bt   dist.Bathtub
	norm float64 // F(L), the raw CDF mass at the deadline

	// qt is the lazily built inverse-CDF table that makes Sample and
	// SampleConditional O(1). It is a pure cache of bt, built on first
	// use so the many throwaway models of fitting loops never pay for it.
	qt atomic.Pointer[dist.QuantileTable]
}

// New wraps a bathtub distribution as a Model.
func New(bt dist.Bathtub) *Model {
	raw := bt.Raw(bt.L)
	if !(raw > 0) {
		panic(fmt.Sprintf("core: bathtub %v has no mass before its deadline", bt))
	}
	return &Model{bt: bt, norm: raw}
}

// Fit fits the paper's model to observed lifetimes with deadline l and
// returns the model together with the fit report (parameters and goodness
// of fit).
func Fit(samples []float64, l float64) (*Model, fit.FitReport, error) {
	rep, err := fit.FitBathtub(samples, l)
	if err != nil {
		return nil, fit.FitReport{}, err
	}
	return New(rep.Dist.(dist.Bathtub)), rep, nil
}

// Bathtub returns the underlying distribution parameters.
func (m *Model) Bathtub() dist.Bathtub { return m.bt }

// Deadline returns the temporal constraint L.
func (m *Model) Deadline() float64 { return m.bt.L }

// RawCDF evaluates Equation 1 (clamped to [0,1]); this is the quantity the
// paper plots and uses in its expressions.
func (m *Model) RawCDF(t float64) float64 { return m.bt.CDF(t) }

// CDF returns the normalized preemption probability P(lifetime <= t): the
// raw model scaled so the deadline has probability 1 (DESIGN.md note 1).
func (m *Model) CDF(t float64) float64 {
	if t >= m.bt.L {
		return 1
	}
	v := m.bt.CDF(t) / m.norm
	if v > 1 {
		return 1
	}
	return v
}

// PDF returns the normalized preemption density.
func (m *Model) PDF(t float64) float64 {
	return m.bt.PDF(t) / m.norm
}

// SurvivalTo returns P(lifetime > t) under the normalized model.
func (m *Model) SurvivalTo(t float64) float64 { return 1 - m.CDF(t) }

// Hazard returns the instantaneous preemption rate h(t) = f(t)/(1 - F(t))
// under the normalized model; it is the bathtub curve itself and diverges
// at the deadline.
func (m *Model) Hazard(t float64) float64 {
	return dist.Hazard(hazardView{m}, t)
}

// hazardView adapts the normalized model to dist.Distribution for the
// shared hazard helper.
type hazardView struct{ m *Model }

func (h hazardView) CDF(t float64) float64 { return h.m.CDF(t) }
func (h hazardView) PDF(t float64) float64 { return h.m.PDF(t) }
func (h hazardView) Name() string          { return "model" }

// ConditionalFailure returns the probability that a VM alive at age s is
// preempted within the next d hours:
//
//	P(s < T <= s+d | T > s) = (F(s+d) - F(s)) / (1 - F(s))
//
// A window reaching the deadline has probability 1 (the VM cannot outlive
// L). This is the job failure probability of Figures 5-7.
func (m *Model) ConditionalFailure(s, d float64) float64 {
	if d <= 0 {
		return 0
	}
	if s < 0 {
		s = 0
	}
	if s+d >= m.bt.L {
		return 1
	}
	surv := 1 - m.CDF(s)
	if surv <= 0 {
		return 1
	}
	p := (m.CDF(s+d) - m.CDF(s)) / surv
	return mathx.Clamp(p, 0, 1)
}

// ExpectedLifetime returns Equation 3 on the raw model, the paper's
// MTTF substitute for comparing VM environments.
func (m *Model) ExpectedLifetime() float64 { return m.bt.ExpectedLifetime() }

// NormalizedExpectedLifetime returns E[T] under the normalized (proper)
// distribution, i.e. Equation 3 divided by F(L).
func (m *Model) NormalizedExpectedLifetime() float64 {
	return m.bt.ExpectedLifetime() / m.norm
}

// quantiles returns the model's inverse-CDF table, building it on first
// use. Concurrent first calls may build twice; both builds are identical
// and one wins the publish, so callers always see the same table values.
func (m *Model) quantiles() *dist.QuantileTable {
	if qt := m.qt.Load(); qt != nil {
		return qt
	}
	qt := dist.NewQuantileTable(m.bt, m.bt.L, dist.DefaultQuantileCells)
	m.qt.CompareAndSwap(nil, qt)
	return m.qt.Load()
}

// Sample draws a lifetime from the normalized model in O(1) via the
// precomputed quantile table (one uniform variate, one lookup).
func (m *Model) Sample(rng *mathx.RNG) float64 {
	return m.quantiles().Sample(rng)
}

// SampleConditional draws a lifetime conditioned on the VM being alive at
// the given age, the hot operation of the Monte Carlo validation loops in
// internal/policy. Like Sample it consumes one uniform variate and
// performs one table lookup; the reference bisection it replaces is
// retained in policy's test suite for agreement checking.
func (m *Model) SampleConditional(age float64, rng *mathx.RNG) float64 {
	if age <= 0 {
		return m.Sample(rng)
	}
	if age >= m.bt.L {
		return m.bt.L
	}
	return m.quantiles().SampleConditional(rng, age, m.bt.CDF(age))
}

// SampleBisect draws a lifetime by the reference 60-iteration CDF
// bisection. It is distributionally identical to Sample (up to the table's
// 1/cells interpolation bound) and exists for agreement tests and
// benchmarks of the quantile-table fast path.
func (m *Model) SampleBisect(rng *mathx.RNG) float64 {
	tr := dist.Truncate(m.bt, m.bt.L)
	return dist.SampleBisect(tr, rng, m.bt.L)
}

func (m *Model) String() string {
	return fmt.Sprintf("model{%v, E[L]=%.2fh}", m.bt, m.ExpectedLifetime())
}
