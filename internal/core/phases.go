package core

import (
	"repro/internal/mathx"
)

// Phase identifies one of the three preemption phases of Observation 1.
type Phase int

// The three phases: high infant preemption rate, stable low-rate middle,
// and the deadline-driven final spike.
const (
	PhaseInitial Phase = iota + 1
	PhaseStable
	PhaseDeadline
)

func (p Phase) String() string {
	switch p {
	case PhaseInitial:
		return "initial"
	case PhaseStable:
		return "stable"
	case PhaseDeadline:
		return "deadline"
	default:
		return "unknown"
	}
}

// PhaseBoundaries returns the ages (t1, t2) at which the preemption rate
// transitions between phases: [0, t1) is the initial phase, [t1, t2) the
// stable phase, and [t2, L] the deadline phase. The initial phase ends
// where the density has shed 95% of its initial excess over the trough
// (for a fitted tau1 ~ 1h this is ~3h, matching the paper's observed
// [0, 3] hour infant phase); symmetrically, the deadline phase begins
// where the density has climbed 5% of the way from the trough to its
// deadline value. Both crossings are found by Brent around the closed-form
// trough.
func (m *Model) PhaseBoundaries() (t1, t2 float64) {
	bt := m.bt
	trough := bt.TroughTime()
	fTrough := bt.PDF(trough)
	const residual = 0.05

	// Descending branch from the infant peak.
	th1 := fTrough + residual*(bt.PDF(0)-fTrough)
	g1 := func(t float64) float64 { return bt.PDF(t) - th1 }
	if g1(0) <= 0 || trough == 0 {
		t1 = 0
	} else if v, err := mathx.Brent(g1, 0, trough, 1e-9); err == nil {
		t1 = v
	} else {
		t1 = trough
	}
	// Ascending branch toward the deadline.
	th2 := fTrough + residual*(bt.PDF(bt.L)-fTrough)
	g2 := func(t float64) float64 { return bt.PDF(t) - th2 }
	if g2(bt.L) <= 0 || trough >= bt.L {
		t2 = bt.L
	} else if v, err := mathx.Brent(g2, trough, bt.L, 1e-9); err == nil {
		t2 = v
	} else {
		t2 = bt.L
	}
	return t1, t2
}

// PhaseAt classifies a VM age into its preemption phase.
func (m *Model) PhaseAt(t float64) Phase {
	t1, t2 := m.PhaseBoundaries()
	switch {
	case t < t1:
		return PhaseInitial
	case t < t2:
		return PhaseStable
	default:
		return PhaseDeadline
	}
}

// StableWindow returns the length of the stable phase, the "valuable" VM
// age range that the service's hot-spare policy exploits (Section 5).
func (m *Model) StableWindow() float64 {
	t1, t2 := m.PhaseBoundaries()
	return t2 - t1
}
