package core

import (
	"fmt"
	"sort"
	"sync"
)

// Registry stores fitted models keyed by environment (the batch service
// parametrizes the bathtub model by VM type, region, time-of-day and
// day-of-week; Section 5). It is safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model)}
}

// Put stores or replaces the model for key.
func (r *Registry) Put(key string, m *Model) {
	if m == nil {
		panic("core: Registry.Put with nil model")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[key] = m
}

// Get returns the model for key, or false when absent.
func (r *Registry) Get(key string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[key]
	return m, ok
}

// MustGet returns the model for key, panicking when absent; callers use it
// for keys they have just registered.
func (r *Registry) MustGet(key string) *Model {
	m, ok := r.Get(key)
	if !ok {
		panic(fmt.Sprintf("core: no model registered for %q", key))
	}
	return m
}

// Keys returns the registered keys in sorted order.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(r.models))
	for k := range r.models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}
