package core

import (
	"math"

	"repro/internal/dist"
	"repro/internal/mathx"
)

// ExpectedWastedWork returns Equation 5: the expected work lost if a job of
// length T suffers exactly one preemption,
//
//	E[W1(T)] = (1 / F(T)) * int_0^T t f(t) dt,
//
// using the paper's raw CDF and closed-form moment. It returns 0 for T <= 0
// and treats a vanishing F(T) (no failure mass yet) as no expected waste.
func (m *Model) ExpectedWastedWork(T float64) float64 {
	if T <= 0 {
		return 0
	}
	f := m.bt.Raw(T)
	if f <= 0 {
		return 0
	}
	if f > 1 {
		f = 1
	}
	return m.bt.PartialMoment(T) / f
}

// ExpectedMakespan returns Equation 7: the expected total running time of a
// job of length T launched on a fresh VM, assuming at most one preemption,
//
//	E[T] = T + int_0^T t f(t) dt.
func (m *Model) ExpectedMakespan(T float64) float64 {
	if T <= 0 {
		return 0
	}
	return T + m.bt.PartialMoment(T)
}

// ExpectedIncrease returns the expected increase in running time
// E[T] - T = int_0^T t f(t) dt, the quantity of Figure 4b.
func (m *Model) ExpectedIncrease(T float64) float64 {
	if T <= 0 {
		return 0
	}
	return m.bt.PartialMoment(T)
}

// ExpectedMakespanAt returns Equation 8: the expected running time of a job
// of length T started on a VM of age s,
//
//	E[Ts] = T + int_s^{s+T} t f(t) dt,
//
// exactly as written in the paper (wasted work is charged as absolute VM
// age; see DESIGN.md note 2). The job scheduling policy compares
// ExpectedMakespanAt(s, T) against ExpectedMakespanAt(0, T).
func (m *Model) ExpectedMakespanAt(s, T float64) float64 {
	if T <= 0 {
		return 0
	}
	if s < 0 {
		s = 0
	}
	return T + m.bt.MomentBetween(s, s+T)
}

// ExpectedMakespanElapsed is the corrected variant of Equation 8 that
// charges only the elapsed job time (t - s) as waste:
//
//	T + int_s^{s+T} (t - s) f(t) dt
//	  = T + int_s^{s+T} t f(t) dt - s (F(s+T) - F(s)).
func (m *Model) ExpectedMakespanElapsed(s, T float64) float64 {
	if T <= 0 {
		return 0
	}
	if s < 0 {
		s = 0
	}
	e := s + T
	mom := m.bt.MomentBetween(s, e)
	dF := m.bt.CDF(e) - m.bt.CDF(s)
	return T + mom - s*dF
}

// ExpectedMakespanMultiFailure extends Equation 7 to arbitrarily many
// failures (the "higher order terms" the paper says follow from the base
// case): the job restarts on a fresh VM after every preemption, so the
// number of failed attempts is geometric with success probability
// 1 - q, q = P(preempted within T) under the normalized model, and each
// failed attempt wastes E[lifetime | lifetime < T] hours:
//
//	E[M] = T + q/(1-q) * E[waste | failure]
//
// It returns +Inf when the job cannot fit before the deadline (q = 1).
func (m *Model) ExpectedMakespanMultiFailure(T float64) float64 {
	if T <= 0 {
		return 0
	}
	q := m.CDF(T)
	if q >= 1 {
		return math.Inf(1)
	}
	if q == 0 {
		return T
	}
	waste := m.bt.PartialMoment(T) / m.norm / q // E[lifetime | lifetime < T]
	return T + q/(1-q)*waste
}

// ExpectedMakespanMultiFailureAt is the start-age variant: the first
// attempt runs on a VM of age s (conditional on it being alive), and every
// retry runs on a fresh VM.
func (m *Model) ExpectedMakespanMultiFailureAt(s, T float64) float64 {
	if T <= 0 {
		return 0
	}
	if s <= 0 {
		return m.ExpectedMakespanMultiFailure(T)
	}
	qs := m.ConditionalFailure(s, T)
	if qs == 0 {
		return T
	}
	restart := m.ExpectedMakespanMultiFailure(T)
	if math.IsInf(restart, 1) && qs > 0 {
		return math.Inf(1)
	}
	// Expected elapsed time of the failed first attempt:
	// E[lifetime - s | s < lifetime < s+T].
	var waste float64
	if s+T >= m.bt.L {
		// Failure may also come from the deadline itself; bound the waste
		// by the remaining window.
		winEnd := m.bt.L
		mass := m.CDF(winEnd) - m.CDF(s)
		if mass > 0 {
			waste = (m.bt.MomentBetween(s, winEnd)/m.norm)/mass - s
		}
		surv := 1 - m.CDF(s)
		if surv > 0 {
			// VMs surviving to the deadline waste the full window to L.
			pDeadline := (1 - m.CDF(winEnd)) / surv
			waste = waste*(1-pDeadline) + (winEnd-s)*pDeadline
		}
	} else {
		mass := m.CDF(s+T) - m.CDF(s)
		if mass > 0 {
			waste = (m.bt.MomentBetween(s, s+T)/m.norm)/mass - s
		}
	}
	if waste < 0 {
		waste = 0
	}
	return (1-qs)*T + qs*(waste+restart)
}

// The generic counterparts below evaluate the same quantities for an
// arbitrary failure distribution by quadrature. Section 6.1 uses them to
// compare bathtub preemptions against uniformly distributed ones.

// WastedWorkDist is Equation 5 for an arbitrary distribution.
func WastedWorkDist(d dist.Distribution, T float64) float64 {
	if T <= 0 {
		return 0
	}
	f := d.CDF(T)
	if f <= 0 {
		return 0
	}
	mom := mathx.Integrate(func(x float64) float64 { return x * d.PDF(x) }, 0, T, 1e-10)
	return mom / f
}

// MakespanDist is Equation 7 for an arbitrary distribution.
func MakespanDist(d dist.Distribution, T float64) float64 {
	if T <= 0 {
		return 0
	}
	return T + IncreaseDist(d, T)
}

// IncreaseDist is the Figure 4b expected-increase integral for an arbitrary
// distribution.
func IncreaseDist(d dist.Distribution, T float64) float64 {
	if T <= 0 {
		return 0
	}
	return mathx.Integrate(func(x float64) float64 { return x * d.PDF(x) }, 0, T, 1e-10)
}
