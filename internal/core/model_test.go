package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/trace"
)

// paperModel returns a model with the paper's typical fitted parameters.
func paperModel() *Model {
	return New(dist.NewBathtub(0.45, 1.0, 0.8, 24, 24))
}

func TestModelCDFNormalized(t *testing.T) {
	m := paperModel()
	if m.CDF(24) != 1 || m.CDF(30) != 1 {
		t.Fatal("CDF at and beyond deadline must be 1")
	}
	if m.CDF(0) > 1e-9 {
		t.Fatalf("CDF(0) = %v", m.CDF(0))
	}
	prev := 0.0
	for i := 0; i <= 240; i++ {
		v := m.CDF(float64(i) / 10)
		if v < prev-1e-12 || v > 1 {
			t.Fatalf("CDF misbehaves at %v: %v", float64(i)/10, v)
		}
		prev = v
	}
}

func TestModelSurvival(t *testing.T) {
	m := paperModel()
	for _, tt := range []float64{0, 5, 12, 23, 24} {
		if math.Abs(m.SurvivalTo(tt)+m.CDF(tt)-1) > 1e-12 {
			t.Fatalf("survival + CDF != 1 at %v", tt)
		}
	}
}

func TestConditionalFailureProperties(t *testing.T) {
	m := paperModel()
	// Reaching the deadline means certain failure.
	if m.ConditionalFailure(20, 5) != 1 {
		t.Fatal("window past deadline must fail with certainty")
	}
	if m.ConditionalFailure(10, 0) != 0 {
		t.Fatal("zero-length window cannot fail")
	}
	// Monotone in window length.
	prev := 0.0
	for _, d := range []float64{0.5, 1, 2, 4, 8} {
		v := m.ConditionalFailure(6, d)
		if v < prev {
			t.Fatalf("conditional failure not monotone in d at %v", d)
		}
		prev = v
	}
	// Mid-life short jobs are much safer than on a fresh VM (the bathtub
	// insight behind VM reuse).
	fresh := m.ConditionalFailure(0, 2)
	mid := m.ConditionalFailure(10, 2)
	if !(mid < fresh/2) {
		t.Fatalf("mid-life failure %v not well below fresh %v", mid, fresh)
	}
}

func TestConditionalFailureMatchesDefinition(t *testing.T) {
	m := paperModel()
	s, d := 4.0, 3.0
	want := (m.CDF(s+d) - m.CDF(s)) / (1 - m.CDF(s))
	if got := m.ConditionalFailure(s, d); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestExpectedLifetimeInRange(t *testing.T) {
	m := paperModel()
	el := m.ExpectedLifetime()
	if el <= 0 || el >= 24 {
		t.Fatalf("E[L] = %v", el)
	}
	nel := m.NormalizedExpectedLifetime()
	if nel <= 0 || nel >= 24 {
		t.Fatalf("normalized E[L] = %v", nel)
	}
	// Normalization with F(L) < 1 inflates the expectation.
	if m.Bathtub().Raw(24) < 1 && nel <= el {
		t.Fatalf("normalized %v should exceed raw %v", nel, el)
	}
}

func TestLargerVMsShorterLifetime(t *testing.T) {
	// Fit models to ground-truth scenarios of increasing size; expected
	// lifetimes must decrease (Observation 4 through the model).
	prev := math.Inf(1)
	for _, vt := range trace.AllVMTypes() {
		sc := trace.Scenario{Type: vt, Zone: trace.USCentral1C, TimeOfDay: trace.Day, Workload: trace.Busy}
		samples := trace.Generate(sc, 3000, 7)
		m, _, err := Fit(samples, trace.Deadline)
		if err != nil {
			t.Fatal(err)
		}
		el := m.NormalizedExpectedLifetime()
		if el >= prev {
			t.Fatalf("%s: E[L]=%v not below previous %v", vt, el, prev)
		}
		prev = el
	}
}

func TestFitQualityOnGroundTruth(t *testing.T) {
	sc := trace.DefaultScenario()
	samples := trace.Generate(sc, 3000, 21)
	m, rep, err := Fit(samples, trace.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.R2 < 0.98 {
		t.Fatalf("R2 = %v", rep.R2)
	}
	truth := trace.GroundTruth(sc)
	// The fitted normalized CDF tracks ground truth within a few percent.
	for _, tt := range []float64{2, 6, 12, 18, 23} {
		if d := math.Abs(m.CDF(tt) - truth.CDF(tt)); d > 0.06 {
			t.Fatalf("model vs truth CDF at %v differs by %v", tt, d)
		}
	}
}

func TestModelHazardBathtub(t *testing.T) {
	m := paperModel()
	early := m.Hazard(0.25)
	mid := m.Hazard(12)
	late := m.Hazard(23.5)
	if !(early > 3*mid) {
		t.Fatalf("early hazard %v not well above middle %v", early, mid)
	}
	if !(late > 3*mid) {
		t.Fatalf("deadline hazard %v not well above middle %v", late, mid)
	}
	if !math.IsInf(m.Hazard(24), 1) {
		t.Fatal("hazard at the deadline must diverge")
	}
}

func TestModelSampleRange(t *testing.T) {
	m := paperModel()
	rng := mathx.NewRNG(3)
	for i := 0; i < 200; i++ {
		v := m.Sample(rng)
		if v < 0 || v > 24 {
			t.Fatalf("sample %v outside [0,24]", v)
		}
	}
}

func TestNewPanicsOnMasslessModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// A zero-weight model (constructed via the struct literal, bypassing
	// NewBathtub's validation) has no mass at any age.
	New(dist.Bathtub{A: 0, Tau1: 1, Tau2: 1, B: 24, L: 24})
}

func TestModelString(t *testing.T) {
	if s := paperModel().String(); !strings.Contains(s, "E[L]") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCDFPropertyBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		m := New(dist.NewBathtub(
			0.3+0.3*rng.Float64(),
			0.4+2*rng.Float64(),
			0.5+0.8*rng.Float64(),
			22+3*rng.Float64(),
			24,
		))
		for i := 0; i <= 48; i++ {
			tt := float64(i) / 2
			v := m.CDF(tt)
			if v < 0 || v > 1 {
				return false
			}
			cf := m.ConditionalFailure(tt, 1)
			if cf < 0 || cf > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
