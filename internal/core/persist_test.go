package core

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	m := paperModel()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Bathtub() != m.Bathtub() {
		t.Fatalf("round trip changed parameters: %v vs %v", back.Bathtub(), m.Bathtub())
	}
	// The decoded model is fully functional.
	if math.Abs(back.CDF(6)-m.CDF(6)) > 1e-15 {
		t.Fatal("decoded model behaves differently")
	}
}

func TestModelUnmarshalRejectsBadParams(t *testing.T) {
	cases := []string{
		`{"a":0,"tau1":1,"tau2":1,"b":24,"l":24}`,
		`{"a":0.4,"tau1":-1,"tau2":1,"b":24,"l":24}`,
		`{"a":0.4,"tau1":1,"tau2":1,"b":24,"l":0}`,
		`not json`,
	}
	for i, c := range cases {
		var m Model
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Fatalf("case %d: bad model accepted", i)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Put("day", paperModel())
	r.Put("night", New(paperModel().Bathtub())) // distinct instance
	var buf bytes.Buffer
	if err := SaveRegistry(r, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRegistry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("registry size %d", back.Len())
	}
	for _, k := range []string{"day", "night"} {
		if back.MustGet(k).Bathtub() != r.MustGet(k).Bathtub() {
			t.Fatalf("entry %q changed", k)
		}
	}
}

func TestLoadRegistryRejectsGarbage(t *testing.T) {
	if _, err := LoadRegistry(strings.NewReader("[]")); err == nil {
		t.Fatal("array accepted")
	}
	if _, err := LoadRegistry(strings.NewReader(`{"x": null}`)); err == nil {
		t.Fatal("null entry accepted")
	}
	if _, err := LoadRegistry(strings.NewReader(`{"x": {"a":0,"tau1":1,"tau2":1,"b":24,"l":24}}`)); err == nil {
		t.Fatal("invalid model accepted")
	}
}
