package core

import (
	"math"
	"testing"
)

func TestMultiFailureReducesToEq7Regime(t *testing.T) {
	// For jobs with low failure probability, the multi-failure makespan is
	// close to (and at least) the single-failure Equation 7 value.
	m := paperModel()
	for _, T := range []float64{0.5, 1, 2} {
		single := m.ExpectedMakespan(T)
		multi := m.ExpectedMakespanMultiFailure(T)
		if multi < T {
			t.Fatalf("multi-failure makespan %v below job length %v", multi, T)
		}
		// Multi-failure under restart semantics can differ from Eq 7's
		// at-most-once accounting, but for short jobs they agree within
		// the second-order term.
		if math.Abs(multi-single) > 0.6*single {
			t.Fatalf("T=%v: multi %v vs single %v diverge unreasonably", T, multi, single)
		}
	}
}

func TestMultiFailureMonotoneInJobLength(t *testing.T) {
	m := paperModel()
	prev := 0.0
	for _, T := range []float64{1, 3, 6, 10, 16, 22} {
		v := m.ExpectedMakespanMultiFailure(T)
		if v <= prev {
			t.Fatalf("not increasing at T=%v: %v <= %v", T, v, prev)
		}
		prev = v
	}
}

func TestMultiFailureInfiniteAtDeadline(t *testing.T) {
	m := paperModel()
	if !math.IsInf(m.ExpectedMakespanMultiFailure(24), 1) {
		t.Fatal("a job as long as the deadline can never finish")
	}
	if !math.IsInf(m.ExpectedMakespanMultiFailure(30), 1) {
		t.Fatal("longer than deadline")
	}
}

func TestMultiFailureZeroJob(t *testing.T) {
	m := paperModel()
	if m.ExpectedMakespanMultiFailure(0) != 0 || m.ExpectedMakespanMultiFailureAt(5, 0) != 0 {
		t.Fatal("zero job")
	}
}

func TestMultiFailureAtStableAgeBeatsFresh(t *testing.T) {
	// Starting in the stable phase, the first attempt almost always
	// succeeds, so the expected makespan approaches T and beats a fresh
	// start with its infant-mortality retries.
	m := paperModel()
	fresh := m.ExpectedMakespanMultiFailure(4)
	stable := m.ExpectedMakespanMultiFailureAt(8, 4)
	if !(stable < fresh) {
		t.Fatalf("stable-age start %v not below fresh %v", stable, fresh)
	}
	if stable > 4.3 {
		t.Fatalf("stable-age 4h job makespan %v should be near 4", stable)
	}
}

func TestMultiFailureAtReducesToFreshAtZero(t *testing.T) {
	m := paperModel()
	a := m.ExpectedMakespanMultiFailureAt(0, 5)
	b := m.ExpectedMakespanMultiFailure(5)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("s=0 variant %v differs from fresh %v", a, b)
	}
}

func TestMultiFailureAtDeadlineWindow(t *testing.T) {
	// A job whose first attempt cannot fit (s+T > L) pays a guaranteed
	// first failure, so its makespan exceeds the fresh restart value.
	m := paperModel()
	late := m.ExpectedMakespanMultiFailureAt(20, 6)
	fresh := m.ExpectedMakespanMultiFailure(6)
	if !(late > fresh) {
		t.Fatalf("late start %v should exceed fresh %v", late, fresh)
	}
	if math.IsInf(late, 1) || math.IsNaN(late) {
		t.Fatalf("late start makespan = %v", late)
	}
}
