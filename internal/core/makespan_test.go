package core

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/mathx"
)

func TestExpectedWastedWorkEdges(t *testing.T) {
	m := paperModel()
	if m.ExpectedWastedWork(0) != 0 || m.ExpectedWastedWork(-1) != 0 {
		t.Fatal("non-positive job length has no waste")
	}
	// Waste given a failure is bounded by the job length.
	for _, T := range []float64{0.5, 2, 6, 12, 24} {
		w := m.ExpectedWastedWork(T)
		if w < 0 || w > T {
			t.Fatalf("E[W1(%v)] = %v outside [0, T]", T, w)
		}
	}
}

func TestUniformWasteIsHalfJobLength(t *testing.T) {
	// Section 6.1: for uniform preemptions the wasted work is J/2.
	u := dist.NewUniform(24)
	for _, T := range []float64{2, 6, 12, 20} {
		got := WastedWorkDist(u, T)
		if math.Abs(got-T/2) > 1e-6 {
			t.Fatalf("uniform waste at %v = %v, want %v", T, got, T/2)
		}
	}
}

func TestUniformIncreaseIsQuadratic(t *testing.T) {
	// Section 6.1: uniform expected increase = J^2/48 for L = 24.
	u := dist.NewUniform(24)
	for _, T := range []float64{2, 6, 10, 20} {
		got := IncreaseDist(u, T)
		want := T * T / 48
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("uniform increase at %v = %v, want %v", T, got, want)
		}
	}
}

func TestMakespanEq7Consistency(t *testing.T) {
	m := paperModel()
	for _, T := range []float64{1, 4, 10, 20} {
		// Eq 7 = T + F(T) * E[W1(T)] (by Eq 5).
		lhs := m.ExpectedMakespan(T)
		f := math.Min(m.Bathtub().Raw(T), 1)
		rhs := T + f*m.ExpectedWastedWork(T)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("Eq7 vs Eq5 at %v: %v vs %v", T, lhs, rhs)
		}
	}
}

func TestMakespanAtReducesToMakespan(t *testing.T) {
	m := paperModel()
	for _, T := range []float64{1, 5, 12} {
		a := m.ExpectedMakespanAt(0, T)
		b := m.ExpectedMakespan(T)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("Eq8 at s=0 differs from Eq7: %v vs %v", a, b)
		}
	}
}

func TestMakespanCrossoverNearDeadline(t *testing.T) {
	// The reuse decision's raison d'etre: a 6 hour job started at age 19
	// (window hits the deadline spike) must look worse than on a fresh VM.
	m := paperModel()
	T := 6.0
	fresh := m.ExpectedMakespanAt(0, T)
	late := m.ExpectedMakespanAt(19, T)
	if !(late > fresh) {
		t.Fatalf("late-start makespan %v should exceed fresh %v", late, fresh)
	}
	// And a mid-life start must look better than fresh (stable phase).
	mid := m.ExpectedMakespanAt(8, T)
	if !(mid < fresh) {
		t.Fatalf("mid-life makespan %v should beat fresh %v", mid, fresh)
	}
}

func TestMakespanElapsedNeverExceedsPaperForm(t *testing.T) {
	// Charging only elapsed time (t-s) wastes less than charging absolute
	// age t, for any s > 0.
	m := paperModel()
	for _, s := range []float64{1, 5, 10, 15} {
		for _, T := range []float64{1, 3, 6} {
			paper := m.ExpectedMakespanAt(s, T)
			elapsed := m.ExpectedMakespanElapsed(s, T)
			if elapsed > paper+1e-9 {
				t.Fatalf("elapsed %v exceeds paper %v at s=%v T=%v", elapsed, paper, s, T)
			}
			if elapsed < T {
				t.Fatalf("elapsed makespan %v below job length %v", elapsed, T)
			}
		}
	}
}

func TestGenericMatchesClosedFormOnBathtub(t *testing.T) {
	m := paperModel()
	bt := m.Bathtub()
	for _, T := range []float64{2, 8, 16} {
		g := IncreaseDist(bt, T)
		c := m.ExpectedIncrease(T)
		if math.Abs(g-c) > 1e-6 {
			t.Fatalf("generic %v vs closed form %v at %v", g, c, T)
		}
	}
}

func TestBathtubBeatsUniformForLongJobs(t *testing.T) {
	// Figure 4b's headline: past a crossover (~5h), bathtub preemptions
	// waste less than uniform ones; for very short jobs they are slightly
	// worse.
	m := paperModel()
	u := dist.NewUniform(24)
	longBathtub := m.ExpectedIncrease(10)
	longUniform := IncreaseDist(u, 10)
	if !(longBathtub < longUniform) {
		t.Fatalf("10h job: bathtub %v should beat uniform %v", longBathtub, longUniform)
	}
	shortBathtub := m.ExpectedIncrease(1)
	shortUniform := IncreaseDist(u, 1)
	if !(shortBathtub > shortUniform) {
		t.Fatalf("1h job: bathtub %v should be worse than uniform %v", shortBathtub, shortUniform)
	}
}

func TestMakespanMonotoneInJobLength(t *testing.T) {
	m := paperModel()
	prev := 0.0
	for i := 1; i <= 24; i++ {
		v := m.ExpectedMakespan(float64(i))
		if v <= prev {
			t.Fatalf("makespan not increasing at %d", i)
		}
		prev = v
	}
}

func TestWastedWorkDistZeroMass(t *testing.T) {
	// A distribution with no mass below T yields zero waste.
	e := dist.NewExponential(1e-9)
	if w := WastedWorkDist(e, 1e-9); w != 0 {
		// F(T) is tiny but positive; accept small values.
		if w > 1e-6 {
			t.Fatalf("waste = %v", w)
		}
	}
	if MakespanDist(e, 0) != 0 {
		t.Fatal("zero-length job")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatal("fresh registry not empty")
	}
	m := paperModel()
	r.Put("b", m)
	r.Put("a", m)
	if got, ok := r.Get("a"); !ok || got != m {
		t.Fatal("Get after Put failed")
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get of missing key succeeded")
	}
	keys := r.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys() = %v", keys)
	}
	if r.MustGet("b") != m {
		t.Fatal("MustGet")
	}
}

func TestRegistryMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().MustGet("nope")
}

func TestRegistryPutNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegistry().Put("x", nil)
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	m := paperModel()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 200; j++ {
				r.Put("k", m)
				r.Get("k")
				r.Keys()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPhaseBoundariesOrdered(t *testing.T) {
	m := paperModel()
	t1, t2 := m.PhaseBoundaries()
	if !(0 < t1 && t1 < t2 && t2 < 24) {
		t.Fatalf("boundaries (%v, %v) not interior-ordered", t1, t2)
	}
	// The paper observes the initial phase spans roughly [0, 3] hours for
	// tau1 ~ 1; accept a generous band.
	if t1 < 0.5 || t1 > 6 {
		t.Fatalf("initial phase ends at %v, expected a few hours", t1)
	}
	// Deadline phase hugs the deadline.
	if t2 < 18 {
		t.Fatalf("deadline phase starts at %v, expected near 24", t2)
	}
}

func TestPhaseAtClassification(t *testing.T) {
	m := paperModel()
	t1, t2 := m.PhaseBoundaries()
	if m.PhaseAt(t1/2) != PhaseInitial {
		t.Fatal("early age must be initial phase")
	}
	if m.PhaseAt((t1+t2)/2) != PhaseStable {
		t.Fatal("mid age must be stable phase")
	}
	if m.PhaseAt(t2+0.1) != PhaseDeadline {
		t.Fatal("late age must be deadline phase")
	}
}

func TestStableWindowDominates(t *testing.T) {
	// With paper-typical parameters most of the VM's life is stable.
	m := paperModel()
	if w := m.StableWindow(); w < 12 {
		t.Fatalf("stable window %v too short", w)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseInitial.String() != "initial" || PhaseStable.String() != "stable" ||
		PhaseDeadline.String() != "deadline" || Phase(99).String() != "unknown" {
		t.Fatal("phase names")
	}
}

func TestPhaseBoundariesDegenerate(t *testing.T) {
	// A nearly flat bathtub (huge tau1) has a long, slowly decaying infant
	// phase; the boundaries must still be ordered and bracket the trough.
	m := New(dist.NewBathtub(0.45, 7.9, 0.8, 24, 24))
	t1, t2 := m.PhaseBoundaries()
	trough := m.Bathtub().TroughTime()
	if !(0 < t1 && t1 <= trough && trough <= t2 && t2 < 24) {
		t.Fatalf("boundaries (%v, %v) do not bracket trough %v", t1, t2, trough)
	}
	// And a steeper infant phase must end earlier.
	steep := New(dist.NewBathtub(0.45, 0.5, 0.8, 24, 24))
	s1, _ := steep.PhaseBoundaries()
	if !(s1 < t1) {
		t.Fatalf("steep model boundary %v not before flat model boundary %v", s1, t1)
	}
	_ = mathx.Clamp // keep import if unused elsewhere
}
