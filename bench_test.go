package repro

// One benchmark per figure and in-text result of the paper's evaluation.
// Each benchmark regenerates its experiment through internal/experiments at
// reporting fidelity and prints the resulting table once (on the first
// iteration), so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's entire evaluation. Benchmark timings measure the
// cost of regenerating each experiment, not a claim from the paper.

import (
	"os"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchOpts is the fidelity used for benchmark runs: full sample size,
// 2-minute DP grid (the 1-minute grid matches the paper but triples the
// Figure 8 solve time without changing any reported digit at this
// precision).
func benchOpts() experiments.Options {
	return experiments.Defaults()
}

var printOnce sync.Map

// runExperiment regenerates experiment id once per benchmark invocation and
// prints its table the first time.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Run(id, benchOpts())
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			if err := tab.Format(os.Stdout); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig01ModelFit(b *testing.B)          { runExperiment(b, "1") }
func BenchmarkFig02aVMTypes(b *testing.B)          { runExperiment(b, "2a") }
func BenchmarkFig02bDiurnal(b *testing.B)          { runExperiment(b, "2b") }
func BenchmarkFig02cZones(b *testing.B)            { runExperiment(b, "2c") }
func BenchmarkFig04aWastedWork(b *testing.B)       { runExperiment(b, "4a") }
func BenchmarkFig04bRunningTime(b *testing.B)      { runExperiment(b, "4b") }
func BenchmarkFig05JobStartTime(b *testing.B)      { runExperiment(b, "5") }
func BenchmarkFig06JobLength(b *testing.B)         { runExperiment(b, "6") }
func BenchmarkFig07Sensitivity(b *testing.B)       { runExperiment(b, "7") }
func BenchmarkFig08aCheckpointStart(b *testing.B)  { runExperiment(b, "8a") }
func BenchmarkFig08bCheckpointLength(b *testing.B) { runExperiment(b, "8b") }
func BenchmarkFig09aCost(b *testing.B)             { runExperiment(b, "9a") }
func BenchmarkFig09bPreemptions(b *testing.B)      { runExperiment(b, "9b") }

func BenchmarkTextCheckpointSchedule(b *testing.B) { runExperiment(b, "checkpoint-schedule") }
func BenchmarkTextExpectedLifetime(b *testing.B)   { runExperiment(b, "expected-lifetime") }

// Extension and ablation experiments (DESIGN.md section 4 and the paper's
// Section 8 future directions).
func BenchmarkExtPhaseWise(b *testing.B)           { runExperiment(b, "phase-wise") }
func BenchmarkExtSpotContrast(b *testing.B)        { runExperiment(b, "spot-contrast") }
func BenchmarkExtExtendedFit(b *testing.B)         { runExperiment(b, "extended-fit") }
func BenchmarkExtVMSelection(b *testing.B)         { runExperiment(b, "vm-selection") }
func BenchmarkAblationReuseCriterion(b *testing.B) { runExperiment(b, "ablation-reuse-criterion") }
func BenchmarkAblationDPStep(b *testing.B)         { runExperiment(b, "ablation-dp-step") }
func BenchmarkAblationCheckpointCost(b *testing.B) { runExperiment(b, "ablation-checkpoint-cost") }
func BenchmarkAblationYoungDalyMTTF(b *testing.B)  { runExperiment(b, "ablation-youngdaly-mttf") }
func BenchmarkExtServiceValidation(b *testing.B)   { runExperiment(b, "service-validation") }
func BenchmarkAblationHotSpare(b *testing.B)       { runExperiment(b, "ablation-hotspare") }
