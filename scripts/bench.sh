#!/usr/bin/env bash
# bench.sh — run the numeric-kernel micro-benchmarks plus the service-level
# throughput benchmark and record the results as JSON, extending the
# performance trajectory PR over PR.
#
# Usage:
#   scripts/bench.sh                 # default suite -> BENCH_PR3.json
#   scripts/bench.sh 'Benchmark.*'   # custom micro pattern (e.g. the full
#                                    # figure suite; slow)
#   scripts/bench.sh PATTERN OUT     # custom pattern and output file
#
# Three benchmark groups run:
#   - micro (root package): sampling, DP solve, Monte Carlo kernels
#   - service (internal/serve): end-to-end sessions/sec through the
#     multi-session manager at parallelism 1 vs GOMAXPROCS, plus the
#     process-wide schedule cache's hit rate
#   - durability (internal/serve): store replay (sessions restored/sec
#     when a manager boots from a snapshot+WAL data dir) and SSE fan-out
#     (publish-side fan-out offers/sec to 1/16/256 subscribers)
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op}
# plus any custom metrics the benchmark reports (sessions_per_sec,
# cache_hit_rate, sessions_restored_per_sec, offers_per_sec).
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-BenchmarkSample|BenchmarkDPSolve|BenchmarkMCMakespan}"
out="${2:-BENCH_PR3.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"
go test -run '^$' -bench 'BenchmarkServiceSessions|BenchmarkStoreRestore|BenchmarkSSEFanout' -benchmem ./internal/serve | tee -a "$raw"

awk -v out="$out" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    order[n++] = name
    # Fields after the iteration count come in (value, unit) pairs; map the
    # unit to a JSON key so custom b.ReportMetric metrics are captured too.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        if (unit == "B_per_op") unit = "bytes_per_op"
        metrics[name, unit] = $i
        if (!((name, unit) in seenkey)) {
            seenkey[name, unit] = 1
            keys[name] = keys[name] (keys[name] == "" ? "" : " ") unit
        }
    }
}
/^(goos|goarch|cpu):/ { meta[$1] = $2 }
END {
    printf "{\n" > out
    printf "  \"goos\": \"%s\",\n", meta["goos:"] >> out
    printf "  \"goarch\": \"%s\",\n", meta["goarch:"] >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {", name >> out
        m = split(keys[name], ks, " ")
        for (j = 1; j <= m; j++) {
            printf "%s\"%s\": %s", (j > 1 ? ", " : ""), ks[j], metrics[name, ks[j]] >> out
        }
        printf "}%s\n", (i < n - 1 ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$raw"

echo "wrote $out"
