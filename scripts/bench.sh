#!/usr/bin/env bash
# bench.sh — run the numeric-kernel micro-benchmarks plus the service-level
# throughput benchmark and record the results as JSON, extending the
# performance trajectory PR over PR. Also diffs two recorded baselines.
#
# Usage:
#   scripts/bench.sh                 # default suite -> BENCH_PR10.json
#   scripts/bench.sh 'Benchmark.*'   # custom micro pattern (e.g. the full
#                                    # figure suite; slow)
#   scripts/bench.sh PATTERN OUT     # custom pattern and output file
#   scripts/bench.sh -compare OLD.json NEW.json
#                                    # diff two baselines: prints the ns/op
#                                    # and allocs/op ratios per benchmark
#                                    # present in both and exits nonzero if
#                                    # either regressed by more than 20%
#
# Every run starts with BenchmarkCalibration, a fixed integer kernel whose
# ns/op tracks only the machine's single-thread speed. -compare uses the
# two files' calibration numbers to normalize every ns/op ratio (ratio
# divided by the machine ratio), so baselines recorded on different or
# noisy hardware stay interpretable: the time REGRESSION gate fires on the
# normalized ratio when both files carry a calibration, on the raw ratio
# otherwise. Allocation counts are machine-independent, so the allocs/op
# gate always fires on the raw ratio — a >20% allocs_per_op growth is a
# regression no matter what hardware recorded the baselines.
#
# Three benchmark groups run:
#   - micro (root package): sampling, DP solve (serial / parallel / pruned /
#     incremental), Monte Carlo kernels, and the online model registry
#     (observation ingest into a hot drift detector, model_ref resolution)
#   - service (internal/serve): end-to-end sessions/sec through the
#     multi-session manager at parallelism 1 vs GOMAXPROCS, the same
#     workload through the sharded router at 1 vs 4 executor shards
#     (persistence on, one WAL stream per shard), the identical workload
#     with the second shard behind a loopback subprocess (the shard
#     protocol's transport cost, vs Sharded1's in-process baseline), the
#     process-wide schedule cache's hit rate, and the cold 3x3x2 sweep
#     (18 sessions against an empty cache; dp_solves/op shows the planner
#     singleflight collapsing the cells onto ~one DP build)
#   - telemetry (internal/obs): the per-event overhead of the metric
#     registry and span ring the serving tier now feeds on every request
#     (counter inc, histogram observe, span emit)
#   - durability (internal/serve): store replay (sessions restored/sec
#     when a manager boots from a snapshot+WAL data dir), the same boot
#     spread over four shard stores (Router.Restore parses and rebuilds
#     shard-parallel), and SSE fan-out (publish-side offers/sec to
#     1/16/256 subscribers)
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op}
# plus any custom metrics the benchmark reports (sessions_per_sec,
# cache_hit_rate, sessions_restored_per_sec, offers_per_sec, dp_solves_per_op).
set -euo pipefail
cd "$(dirname "$0")/.."

# compare OLD NEW: diff ns/op of benchmarks present in both files.
compare() {
    old="$1" new="$2"
    awk -v oldfile="$old" -v newfile="$new" '
    function parse(file, dest, destalloc,    line, name, v) {
        while ((getline line < file) > 0) {
            if (match(line, /"Benchmark[^"]*"/)) {
                name = substr(line, RSTART + 1, RLENGTH - 2)
                if (match(line, /"ns_per_op": *[0-9.eE+-]+/)) {
                    v = substr(line, RSTART, RLENGTH)
                    sub(/"ns_per_op": */, "", v)
                    dest[name] = v + 0
                }
                if (match(line, /"allocs_per_op": *[0-9.eE+-]+/)) {
                    v = substr(line, RSTART, RLENGTH)
                    sub(/"allocs_per_op": */, "", v)
                    destalloc[name] = v + 0
                }
            }
        }
        close(file)
    }
    BEGIN {
        parse(oldfile, oldns, oldal)
        parse(newfile, newns, newal)
        cal = 0
        if (("BenchmarkCalibration" in oldns) && ("BenchmarkCalibration" in newns) && oldns["BenchmarkCalibration"] > 0) {
            cal = newns["BenchmarkCalibration"] / oldns["BenchmarkCalibration"]
            printf "calibration: %.0f -> %.0f ns/op (machine ratio %.2fx); gating on normalized ratios\n", \
                oldns["BenchmarkCalibration"], newns["BenchmarkCalibration"], cal
        } else {
            print "calibration: absent from one baseline; gating on raw ratios"
        }
        printf "%-42s %14s %14s %8s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "norm", "allocs"
        for (name in oldns) {
            if (!(name in newns)) continue
            ratio = newns[name] / oldns[name]
            norm = (cal > 0 ? ratio / cal : ratio)
            flag = ""
            if (name != "BenchmarkCalibration" && norm > 1.20) { flag = "  REGRESSION"; bad++ }
            # Allocation counts are deterministic per machine-independent
            # code path: gate on the raw ratio, no calibration involved.
            alstr = ""
            if ((name in oldal) && (name in newal) && oldal[name] > 0) {
                alratio = newal[name] / oldal[name]
                alstr = sprintf("%11.2fx", alratio)
                if (name != "BenchmarkCalibration" && alratio > 1.20) {
                    flag = flag "  ALLOC-REGRESSION"; badal++
                }
            }
            printf "%-42s %14.0f %14.0f %7.2fx %7.2fx %s%s\n", name, oldns[name], newns[name], ratio, norm, alstr, flag
            n++
        }
        if (n == 0) { print "no common benchmarks between the two files" > "/dev/stderr"; exit 2 }
        if (bad > 0) printf "%d benchmark(s) regressed by >20%% normalized ns/op\n", bad > "/dev/stderr"
        if (badal > 0) printf "%d benchmark(s) regressed by >20%% allocs/op\n", badal > "/dev/stderr"
        if (bad + badal > 0) exit 1
    }'
}

if [ "${1:-}" = "-compare" ]; then
    if [ $# -ne 3 ]; then
        echo "usage: scripts/bench.sh -compare OLD.json NEW.json" >&2
        exit 2
    fi
    compare "$2" "$3"
    exit $?
fi

pattern="${1:-BenchmarkSample|BenchmarkDPSolve|BenchmarkMCMakespan|BenchmarkRegistryIngest|BenchmarkModelResolve}"
out="${2:-BENCH_PR10.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The calibration kernel always runs, whatever the pattern, so every
# recorded baseline carries the machine-speed reference -compare needs.
go test -run '^$' -bench '^BenchmarkCalibration$' . | tee "$raw"
go test -run '^$' -bench "$pattern" -benchmem . | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkServiceSessions|BenchmarkStoreRestore|BenchmarkSSEFanout|BenchmarkColdSweep' -benchmem ./internal/serve | tee -a "$raw"
go test -run '^$' -bench '^BenchmarkObsOverhead$' -benchmem ./internal/obs | tee -a "$raw"

awk -v out="$out" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    # Dedupe: a custom pattern matching BenchmarkCalibration would
    # otherwise record it twice (it always runs first).
    if (!(name in seenname)) { seenname[name] = 1; order[n++] = name }
    # Fields after the iteration count come in (value, unit) pairs; map the
    # unit to a JSON key so custom b.ReportMetric metrics are captured too.
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        if (unit == "B_per_op") unit = "bytes_per_op"
        metrics[name, unit] = $i
        if (!((name, unit) in seenkey)) {
            seenkey[name, unit] = 1
            keys[name] = keys[name] (keys[name] == "" ? "" : " ") unit
        }
    }
}
/^(goos|goarch|cpu):/ { meta[$1] = $2 }
END {
    printf "{\n" > out
    printf "  \"goos\": \"%s\",\n", meta["goos:"] >> out
    printf "  \"goarch\": \"%s\",\n", meta["goarch:"] >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {", name >> out
        m = split(keys[name], ks, " ")
        for (j = 1; j <= m; j++) {
            printf "%s\"%s\": %s", (j > 1 ? ", " : ""), ks[j], metrics[name, ks[j]] >> out
        }
        printf "}%s\n", (i < n - 1 ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$raw"

echo "wrote $out"
