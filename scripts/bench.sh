#!/usr/bin/env bash
# bench.sh — run the numeric-kernel micro-benchmarks and record the results
# as JSON, seeding the performance trajectory PR over PR.
#
# Usage:
#   scripts/bench.sh                 # micro-benchmarks -> BENCH_PR1.json
#   scripts/bench.sh 'Benchmark.*'   # custom pattern (e.g. the full figure
#                                    # suite; slow) -> BENCH_PR1.json
#   scripts/bench.sh PATTERN OUT     # custom pattern and output file
#
# The JSON maps benchmark name -> {ns_per_op, bytes_per_op, allocs_per_op}.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${1:-BenchmarkSample|BenchmarkDPSolve|BenchmarkMCMakespan}"
out="${2:-BENCH_PR1.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

awk -v out="$out" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    ns[name] = $3
    bytes[name] = $5
    allocs[name] = $7
    order[n++] = name
}
/^(goos|goarch|cpu):/ { meta[$1] = $2 }
END {
    printf "{\n" > out
    printf "  \"goos\": \"%s\",\n", meta["goos:"] >> out
    printf "  \"goarch\": \"%s\",\n", meta["goarch:"] >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 0; i < n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, ns[name], bytes[name], allocs[name], (i < n - 1 ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$raw"

echo "wrote $out"
