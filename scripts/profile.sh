#!/usr/bin/env bash
# profile.sh — capture CPU and allocation profiles from the two hot-path
# benchmarks this repo optimizes against: the cold checkpoint-DP solve
# (BenchmarkDPSolve, root package) and the end-to-end session path
# (BenchmarkServiceSessionsPMax, internal/serve). Profiles and the test
# binaries pprof needs to symbolize them land in profiles/.
#
# Usage:
#   scripts/profile.sh            # profile both benchmarks
#   scripts/profile.sh dp         # just the DP solve
#   scripts/profile.sh sessions   # just the session path
#
# Inspect afterwards with, e.g.:
#   go tool pprof -top profiles/sessions.test profiles/sessions_cpu.pprof
#   go tool pprof -top -sample_index=alloc_objects \
#       profiles/sessions.test profiles/sessions_mem.pprof
#   go tool pprof -list SubmitBagAt profiles/sessions.test profiles/sessions_mem.pprof
#
# The memory profile is written with -memprofilerate=1 alloc sampling left
# at the runtime default (512 KiB): counts are extrapolations good for
# ranking call sites, not exact tallies — trust -benchmem for totals.
set -euo pipefail
cd "$(dirname "$0")/.."

which="${1:-all}"
mkdir -p profiles

profile_one() {
    name="$1" pkg="$2" bench="$3" benchtime="$4"
    echo "== $name: $bench ($pkg) =="
    go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem \
        -cpuprofile "profiles/${name}_cpu.pprof" \
        -memprofile "profiles/${name}_mem.pprof" \
        -o "profiles/${name}.test" \
        "$pkg"
    echo "   profiles/${name}_cpu.pprof  profiles/${name}_mem.pprof  profiles/${name}.test"
}

case "$which" in
all|dp)
    profile_one dp . '^BenchmarkDPSolve$' 5x
    ;;&
all|sessions)
    profile_one sessions ./internal/serve '^BenchmarkServiceSessionsPMax$' 300x
    ;;&
all|dp|sessions) ;;
*)
    echo "usage: scripts/profile.sh [all|dp|sessions]" >&2
    exit 2
    ;;
esac

echo "done; see header comment for pprof invocations"
