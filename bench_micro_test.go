package repro

// Micro-benchmarks for the numeric kernel's hot paths, the baseline every
// later performance PR is judged against. scripts/bench.sh runs them and
// records the results in BENCH_PR1.json.
//
// The headline comparison is BenchmarkSampleBisection (the retained
// 60-iteration inverse-CDF reference) against BenchmarkSampleQuantileTable
// (the precomputed-table fast path used by Model.Sample and the Monte
// Carlo estimators); the acceptance bar is a >= 5x gap. BenchmarkMCMakespan
// runs the same estimate at parallelism 1 and at GOMAXPROCS — the results
// are byte-identical, only the wall clock differs.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/policy"
	"repro/internal/registry"
)

// benchModel is the paper-typical fitted model used by all micro-benches.
func benchModel() *core.Model {
	return core.New(dist.NewBathtub(0.45, 1.0, 0.8, 24, 24))
}

func BenchmarkSampleBisection(b *testing.B) {
	m := benchModel()
	rng := mathx.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleBisect(rng)
	}
}

func BenchmarkSampleQuantileTable(b *testing.B) {
	m := benchModel()
	rng := mathx.NewRNG(1)
	m.Sample(rng) // build the table outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Sample(rng)
	}
}

func BenchmarkSampleConditionalQuantileTable(b *testing.B) {
	m := benchModel()
	rng := mathx.NewRNG(1)
	m.Sample(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleConditional(10, rng)
	}
}

// benchDPSolve measures a cold checkpoint-DP solve of a 4-hour job at the
// experiments' default 2-minute resolution (the row-parallel O(n^2 * ages)
// sweep dominates) with the given worker count and solver modes. All
// variants produce bit-identical tables (see the equality gates in
// internal/policy); only the wall clock differs.
func benchDPSolve(b *testing.B, parallelism int, prune, coarseFine, float32Table bool) {
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := policy.NewCheckpointPlanner(m, 1.0/60, 2.0/60)
		p.SetParallelism(parallelism)
		p.Prune = prune
		p.CoarseFine = coarseFine
		p.Float32 = float32Table
		_ = p.ExpectedMakespan(4, 0)
	}
}

// BenchmarkDPSolve is the serial exhaustive baseline (the PR-3 headline
// number), kept under its original name so bench.sh -compare tracks it
// across baselines.
func BenchmarkDPSolve(b *testing.B) { benchDPSolve(b, 1, false, false, false) }

// BenchmarkDPSolveP1 is the parallel solver pinned to one worker. At
// parallelism 1, solveRows deliberately collapses to the plain serial loop
// (no pool, no barriers), so this is the serial solver by construction and
// must match BenchmarkDPSolve exactly; it exists under its own name so the
// P1-vs-PMax pair reads directly off one bench run.
func BenchmarkDPSolveP1(b *testing.B) { benchDPSolve(b, 1, false, false, false) }

// BenchmarkDPSolvePMax shards the per-row age loop across GOMAXPROCS
// workers.
func BenchmarkDPSolvePMax(b *testing.B) { benchDPSolve(b, runtime.GOMAXPROCS(0), false, false, false) }

// BenchmarkDPSolvePruned runs the opt-in branch-and-bound candidate cuts,
// serial, against the same cold solve. At this default shape the pruning
// cap (the survival-zero saturation window) only binds for restart ages
// past ~20h on a 4h job, so almost no candidates are cut and the numbers
// track BenchmarkDPSolve; see BenchmarkDPSolvePrunedLong for a shape where
// the cap pays. The benchmark is kept at the default shape anyway — it
// pins the cost of *enabling* Prune where it cannot win.
func BenchmarkDPSolvePruned(b *testing.B) { benchDPSolve(b, 1, true, false, false) }

// BenchmarkDPSolvePrunedPMax combines both fast modes.
func BenchmarkDPSolvePrunedPMax(b *testing.B) {
	benchDPSolve(b, runtime.GOMAXPROCS(0), true, false, false)
}

// BenchmarkDPSolveCoarseFine is the coarse-to-fine guided solve (the PR-7
// headline number): a 4x-coarser guide solve seeds per-cell candidate
// bounds that let the fine scan skip provably-non-optimal candidates while
// producing the exact exhaustive table.
func BenchmarkDPSolveCoarseFine(b *testing.B) { benchDPSolve(b, 1, false, true, false) }

// BenchmarkDPSolveCoarseFinePMax combines the guided scan with row
// parallelism.
func BenchmarkDPSolveCoarseFinePMax(b *testing.B) {
	benchDPSolve(b, runtime.GOMAXPROCS(0), false, true, false)
}

// BenchmarkDPSolveFloat32 runs the guided solve against the float32 value
// table (half the table bytes; values within 1e-4 relative of float64).
func BenchmarkDPSolveFloat32(b *testing.B) { benchDPSolve(b, 1, false, true, true) }

// benchDPSolveLong measures a cold solve of a 20-hour job at 5-minute
// resolution — a long-job shape where the work axis (n=240) dominates the
// age axis (289 cells) and the pruning cap binds from restart age ~4h
// up, so BenchmarkDPSolvePrunedLong actually cuts candidate work (unlike
// BenchmarkDPSolvePruned at the default shape, where the cap never
// engages below a 20h restart age).
func benchDPSolveLong(b *testing.B, prune, coarseFine bool) {
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := policy.NewCheckpointPlanner(m, 2.0/60, 5.0/60)
		p.SetParallelism(1)
		p.Prune = prune
		p.CoarseFine = coarseFine
		_ = p.ExpectedMakespan(20, 0)
	}
}

func BenchmarkDPSolveLong(b *testing.B) { benchDPSolveLong(b, false, false) }

// BenchmarkDPSolvePrunedLong is the pruning-favorable companion to
// BenchmarkDPSolvePruned: on the 20h/5min shape the saturation cap fires
// across most of the age axis.
func BenchmarkDPSolvePrunedLong(b *testing.B) { benchDPSolveLong(b, true, false) }

// BenchmarkDPSolveCoarseFineLong runs the guided scan on the long-job
// shape.
func BenchmarkDPSolveCoarseFineLong(b *testing.B) { benchDPSolveLong(b, false, true) }

// BenchmarkDPSolveIncremental measures growing a warm half-size table to
// the full job length — the cost a session pays when a longer job arrives —
// versus BenchmarkDPSolve's from-scratch build of the same final table.
func BenchmarkDPSolveIncremental(b *testing.B) {
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := policy.NewCheckpointPlanner(m, 1.0/60, 2.0/60)
		p.SetParallelism(1)
		_ = p.ExpectedMakespan(2, 0) // warm: rows for the 2-hour prefix
		b.StartTimer()
		_ = p.ExpectedMakespan(4, 0) // timed: grow 2h -> 4h in place
	}
}

func benchMCMakespan(b *testing.B, parallelism int) {
	m := benchModel()
	cfg := policy.MCConfig{Runs: 4000, Seed: 7, Parallelism: parallelism}
	m.Sample(mathx.NewRNG(1)) // build the quantile table up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = policy.MCMakespanNoCheckpoint(m, 4, 0, cfg)
	}
}

func BenchmarkMCMakespanP1(b *testing.B) { benchMCMakespan(b, 1) }

func BenchmarkMCMakespanPMax(b *testing.B) { benchMCMakespan(b, runtime.GOMAXPROCS(0)) }

// benchRegistry returns a registry with one entry whose model matches
// benchModel, plus a pool of lifetimes drawn from that model (so steady
// ingest exercises the KS-window hot path without ever flagging).
func benchRegistry(b *testing.B) (*registry.Registry, []float64) {
	b.Helper()
	params := registry.Params{A: 0.45, Tau1: 1.0, Tau2: 0.8, B: 24, L: 24}
	reg := registry.New()
	_, err := reg.Create("bench", registry.Scenario{VMType: "n1-highcpu-16", Zone: "us-east1-b"},
		registry.EntryConfig{},
		registry.Provenance{Family: "manual", Params: params, Source: "register"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	m, err := params.Model()
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(1)
	pool := make([]float64, 4096)
	for i := range pool {
		pool[i] = m.Sample(rng)
	}
	return reg, pool
}

// BenchmarkRegistryIngest measures observation throughput into a hot
// change-point detector — the online registry's ingest path under a steady
// stream of model-consistent lifetimes (each op is one 128-observation
// batch; the obs/sec metric is the headline number).
func BenchmarkRegistryIngest(b *testing.B) {
	reg, pool := benchRegistry(b)
	const batch = 128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % (len(pool) - batch)
		if _, err := reg.Ingest("bench", pool[lo:lo+batch], nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "obs/sec")
}

// BenchmarkModelResolve measures reference resolution — the registry work
// on every model_ref session create (and sweep cell), pinning "@latest"
// against an entry with a version history.
func BenchmarkModelResolve(b *testing.B) {
	reg, _ := benchRegistry(b)
	for i := 0; i < 3; i++ {
		prov := registry.Provenance{
			Family: "manual",
			Params: registry.Params{A: 0.45, Tau1: 1.0 + float64(i)*0.1, Tau2: 0.8, B: 24, L: 24},
			Source: "register",
		}
		if _, err := reg.Publish("bench", prov, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Resolve("bench@latest"); err != nil {
			b.Fatal(err)
		}
	}
}

// calibrationSink keeps BenchmarkCalibration's kernel observable so the
// compiler cannot eliminate it.
var calibrationSink uint64

// BenchmarkCalibration is a fixed, dependency-free integer-mixing kernel
// whose ns/op tracks only the machine's single-thread speed — never this
// repo's code. scripts/bench.sh records it alongside every baseline so
// that -compare can normalize ns/op ratios taken on different (or noisy)
// hardware: a benchmark is only flagged as a regression when it slowed
// down relative to the calibration kernel, not merely because the CPU did.
func BenchmarkCalibration(b *testing.B) {
	x := uint64(0x9e3779b97f4a7c15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			x ^= x >> 33
			x *= 0xff51afd7ed558ccd
			x ^= x >> 29
		}
	}
	calibrationSink = x
}
