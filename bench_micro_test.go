package repro

// Micro-benchmarks for the numeric kernel's hot paths, the baseline every
// later performance PR is judged against. scripts/bench.sh runs them and
// records the results in BENCH_PR1.json.
//
// The headline comparison is BenchmarkSampleBisection (the retained
// 60-iteration inverse-CDF reference) against BenchmarkSampleQuantileTable
// (the precomputed-table fast path used by Model.Sample and the Monte
// Carlo estimators); the acceptance bar is a >= 5x gap. BenchmarkMCMakespan
// runs the same estimate at parallelism 1 and at GOMAXPROCS — the results
// are byte-identical, only the wall clock differs.

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/policy"
)

// benchModel is the paper-typical fitted model used by all micro-benches.
func benchModel() *core.Model {
	return core.New(dist.NewBathtub(0.45, 1.0, 0.8, 24, 24))
}

func BenchmarkSampleBisection(b *testing.B) {
	m := benchModel()
	rng := mathx.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleBisect(rng)
	}
}

func BenchmarkSampleQuantileTable(b *testing.B) {
	m := benchModel()
	rng := mathx.NewRNG(1)
	m.Sample(rng) // build the table outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Sample(rng)
	}
}

func BenchmarkSampleConditionalQuantileTable(b *testing.B) {
	m := benchModel()
	rng := mathx.NewRNG(1)
	m.Sample(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.SampleConditional(10, rng)
	}
}

// BenchmarkDPSolve measures a cold checkpoint-DP solve of a 4-hour job at
// the experiments' default 2-minute resolution (the flattened table's
// O(T^3) sweep dominates).
func BenchmarkDPSolve(b *testing.B) {
	m := benchModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := policy.NewCheckpointPlanner(m, 1.0/60, 2.0/60)
		_ = p.ExpectedMakespan(4, 0)
	}
}

func benchMCMakespan(b *testing.B, parallelism int) {
	m := benchModel()
	cfg := policy.MCConfig{Runs: 4000, Seed: 7, Parallelism: parallelism}
	m.Sample(mathx.NewRNG(1)) // build the quantile table up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = policy.MCMakespanNoCheckpoint(m, 4, 0, cfg)
	}
}

func BenchmarkMCMakespanP1(b *testing.B) { benchMCMakespan(b, 1) }

func BenchmarkMCMakespanPMax(b *testing.B) { benchMCMakespan(b, runtime.GOMAXPROCS(0)) }
