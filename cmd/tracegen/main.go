// Command tracegen generates the synthetic preemption dataset that stands
// in for the paper's published measurements of Google Preemptible VMs.
//
// Usage:
//
//	tracegen [-n 5] [-seed 42] [-o preemptions.csv]
//
// -n sets the number of VMs per (type, zone, time-of-day, workload)
// combination; with the default 5 the dataset holds 400 records, close to
// the density of the paper's 870-VM study over its sparser grid.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 5, "VMs per scenario combination")
	seed := flag.Uint64("seed", 42, "RNG seed")
	out := flag.String("o", "", "output CSV path (default stdout)")
	flag.Parse()

	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -n must be positive")
		os.Exit(2)
	}
	ds := trace.GenerateDataset(*n, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %s\n", ds)
}
