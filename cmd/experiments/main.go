// Command experiments regenerates the paper's evaluation figures as data
// tables printed to stdout.
//
// Usage:
//
//	experiments -all                 # every figure
//	experiments -fig 4b              # one figure
//	experiments -list                # available experiment IDs
//	experiments -fig 8a -dpstep 1    # 1-minute DP resolution
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	all := flag.Bool("all", false, "run every experiment")
	figID := flag.String("fig", "", "experiment ID (see -list)")
	list := flag.Bool("list", false, "list experiment IDs")
	seed := flag.Uint64("seed", 0, "RNG seed (0 = default)")
	samples := flag.Int("samples", 0, "empirical sample size (0 = default)")
	dpStep := flag.Float64("dpstep", 0, "checkpoint DP step in minutes (0 = default)")
	par := flag.Int("parallelism", 0, "worker count for independent experiment cells (0 = GOMAXPROCS, 1 = sequential; results are identical at any value)")
	format := flag.String("format", "table", "output format: table or csv")
	outDir := flag.String("out", "", "write each experiment to <dir>/<id>.<format> instead of stdout")
	flag.Parse()

	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := experiments.Options{Seed: *seed, SampleSize: *samples, DPStepMin: *dpStep, Parallelism: *par}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *figID != "":
		ids = []string{*figID}
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -all, -fig <id>, or -list")
		os.Exit(2)
	}
	for _, id := range ids {
		tab, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		w := io.Writer(os.Stdout)
		if *outDir != "" {
			ext := "txt"
			if *format == "csv" {
				ext = "csv"
			}
			f, err := os.Create(filepath.Join(*outDir, id+"."+ext))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			w = f
			defer f.Close()
		}
		var werr error
		if *format == "csv" {
			werr = tab.WriteCSV(w)
		} else {
			werr = tab.Format(w)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", werr)
			os.Exit(1)
		}
	}
}
