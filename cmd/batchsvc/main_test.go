package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Shutdown smoke test for distributed mode: the real binary with
// -distribute must fan SIGTERM out to its shard subprocesses and exit with
// every child reaped — no zombies, no survivors holding the data dir.

// freePort reserves a loopback port and releases it for the server.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// shardProcs scans /proc for live processes running bin in shard-server
// mode and returns their pids.
func shardProcs(t *testing.T, bin string) []int {
	t.Helper()
	entries, err := os.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	var pids []int
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil {
			continue
		}
		raw, err := os.ReadFile(filepath.Join("/proc", e.Name(), "cmdline"))
		if err != nil {
			continue // exited mid-scan
		}
		args := strings.Split(string(bytes.TrimRight(raw, "\x00")), "\x00")
		if len(args) > 0 && args[0] == bin {
			for _, a := range args[1:] {
				if a == "-shard-server" {
					pids = append(pids, pid)
					break
				}
			}
		}
	}
	return pids
}

func TestDistributeShutdownLeavesNoZombies(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "batchsvc")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	apiPort := freePort(t)
	base := freePort(t)
	cmd := exec.Command(bin,
		"-distribute", "-shards", "3",
		"-addr", fmt.Sprintf("127.0.0.1:%d", apiPort),
		"-shard-port-base", strconv.Itoa(base),
		"-data-dir", filepath.Join(dir, "data"),
		"-parallelism", "2",
		"-shutdown-timeout", "15s",
	)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			<-exited
		}
	}()

	// The router answers once every shard is spawned, pinged, and synced.
	statsURL := fmt.Sprintf("http://127.0.0.1:%d/api/stats", apiPort)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(statsURL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		select {
		case err := <-exited:
			t.Fatalf("batchsvc exited before serving: %v\n%s", err, logs.Bytes())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("batchsvc never answered %s\n%s", statsURL, logs.Bytes())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// -shards 3 -distribute: shard 0 is in-process, shards 1-2 are
	// subprocesses.
	pids := shardProcs(t, bin)
	if len(pids) != 2 {
		t.Fatalf("found %d shard-server processes, want 2 (pids %v)\n%s", len(pids), pids, logs.Bytes())
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("batchsvc exit after SIGTERM: %v\n%s", err, logs.Bytes())
		}
	case <-time.After(25 * time.Second):
		t.Fatalf("batchsvc did not exit within 25s of SIGTERM\n%s", logs.Bytes())
	}

	// Every shard subprocess is gone with the parent: none still running,
	// and none left as a zombie (a zombie keeps its /proc entry).
	if pids := shardProcs(t, bin); len(pids) != 0 {
		t.Fatalf("shard-server processes survived shutdown: pids %v\n%s", pids, logs.Bytes())
	}
	for _, pid := range pids {
		if err := syscall.Kill(pid, 0); err == nil {
			t.Fatalf("pid %d still signalable after shutdown", pid)
		}
	}
}
