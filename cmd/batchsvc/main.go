// Command batchsvc runs the batch computing service with its HTTP JSON API
// over the simulated cloud, the reproduction of the paper's Section 5
// prototype.
//
// Usage:
//
//	batchsvc [-addr :8080] [-vms 8] [-type n1-highcpu-16] [-zone us-east1-b]
//
// Then:
//
//	curl -X POST localhost:8080/api/bags -d '{"app":"nanoconfinement","jobs":100,"seed":1}'
//	curl -X POST localhost:8080/api/run
//	curl localhost:8080/api/report
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/batch"

	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	vms := flag.Int("vms", 8, "number of VMs in the cluster")
	vmType := flag.String("type", string(trace.HighCPU16), "VM type")
	zone := flag.String("zone", string(trace.USEast1B), "zone")
	gangSize := flag.Int("gang", 1, "VMs per job gang")
	seed := flag.Uint64("seed", 42, "simulation seed")
	samples := flag.Int("samples", 2000, "model fitting sample size")
	flag.Parse()

	if *vms <= 0 || *gangSize <= 0 || *vms%*gangSize != 0 {
		fmt.Fprintln(os.Stderr, "batchsvc: -vms must be a positive multiple of -gang")
		os.Exit(2)
	}

	// Bootstrap the preemption models exactly as the paper's service does:
	// fit per time-of-day environment from the observed (here: generated)
	// preemption history for this VM type and zone (Section 5's
	// parameterization by type, region, and time-of-day).
	models, err := batch.FitStudyModels(trace.VMType(*vmType), trace.Zone(*zone), *samples, *seed)
	if err != nil {
		log.Fatalf("batchsvc: fitting preemption models: %v", err)
	}
	dayModel := models.MustGet(batch.ModelKey(trace.VMType(*vmType), trace.Zone(*zone), trace.Day))
	log.Printf("batchsvc: fitted %d models; day model %v", models.Len(), dayModel)

	api := batch.NewAPI(func() (*batch.Service, error) {
		return batch.New(batch.Config{
			VMType:         trace.VMType(*vmType),
			Zone:           trace.Zone(*zone),
			Gangs:          *vms / *gangSize,
			GangSize:       *gangSize,
			Preemptible:    true,
			HotSpareTTL:    1,
			Models:         models,
			UseReusePolicy: true,
			Seed:           *seed,
		})
	})
	log.Printf("batchsvc: serving on %s (%d x %s in %s)", *addr, *vms, *vmType, *zone)
	log.Fatal(http.ListenAndServe(*addr, api.Handler()))
}
