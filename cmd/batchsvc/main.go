// Command batchsvc runs the multi-session batch computing service with its
// HTTP JSON API over the simulated cloud — the paper's Section 5 prototype
// grown into a front door that serves many concurrent scenario sessions.
//
// Usage:
//
//	batchsvc [-addr :8080] [-parallelism N] [-planner-parallelism N]
//	         [-data-dir DIR] [-schedule-cache-cap N] [-pprof PORT]
//
// Each session carries its own configuration, so one process serves any
// mix of VM types, zones, policies, and seeds:
//
//	curl -X POST localhost:8080/api/sessions -d '{
//	  "name": "demo",
//	  "config": {"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 8,
//	             "seed": 1, "fit": {"samples": 2000, "seed": 42}}}'
//	curl -X POST localhost:8080/api/sessions/s-001/bags -d '{"app":"nanoconfinement","jobs":100,"seed":1}'
//	curl -X POST localhost:8080/api/sessions/s-001/run
//	curl localhost:8080/api/sessions/s-001          # status + live progress
//	curl -N localhost:8080/api/sessions/s-001/events # SSE progress stream
//	curl localhost:8080/api/sessions/s-001/report   # once done
//	curl -X DELETE localhost:8080/api/sessions/s-001 # cancels if running
//
// The /api/models endpoints expose the online model registry: versioned
// preemption models that learn from observed lifetimes. Register one (here
// via the tracegen | fitmodel pipeline), point sessions at it with
// "model_ref", and feed it observations; when the drift detector flags a
// change point, a refit publishes the next version while sessions pinned
// at older versions stay byte-identical:
//
//	tracegen -n 20 | fitmodel -i - -json | curl -X POST localhost:8080/api/models -d @-
//	curl -X POST localhost:8080/api/sessions -d '{
//	  "config": {"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 8,
//	             "seed": 1, "model_ref": "n1-highcpu-16-us-east1-b@latest"}}'
//	curl -X POST localhost:8080/api/models/n1-highcpu-16-us-east1-b/observations \
//	  -d '{"lifetimes": [0.5, 2.25, 23.1]}'
//	curl -X POST localhost:8080/api/models/n1-highcpu-16-us-east1-b/refit
//
// With -data-dir, the session lifecycle is durable: configs, bags, state
// transitions, completed reports, and the model registry (versions,
// observation high-water marks, detector state) are written to a
// snapshot+WAL store, and a restart resumes every non-running session —
// and the registry — exactly where it was (sessions that were mid-run
// recover as failed with a diagnostic).
//
// POST /api/sweep fans a scenario grid (VM types x zones x policies,
// optionally x model_refs) out across sessions and aggregates the
// comparison. SIGINT/SIGTERM drain in-flight runs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0),
		"max session simulations running concurrently")
	plannerParallelism := flag.Int("planner-parallelism", 0,
		"row-parallel worker count for cold DP checkpoint solves (0: GOMAXPROCS); "+
			"sessions can override per config via planner_parallelism")
	dataDir := flag.String("data-dir", "",
		"directory for the session snapshot+WAL store (empty: in-memory only)")
	cacheCap := flag.Int("schedule-cache-cap", policy.DefaultSharedCacheCapacity,
		"LRU bound (entries per artifact kind) of the process-wide schedule cache")
	pprofPort := flag.Int("pprof", 0,
		"localhost port for the net/http/pprof profiling server (0: disabled)")
	flag.Parse()

	policy.SetSharedCacheCapacity(*cacheCap)
	policy.SetDefaultPlannerParallelism(*plannerParallelism)
	if *pprofPort > 0 {
		// Profiling stays off the public listener: its own mux on a
		// loopback-only port, so deployments never expose /debug/pprof by
		// accident.
		pprofAddr := fmt.Sprintf("127.0.0.1:%d", *pprofPort)
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("batchsvc: pprof on http://%s/debug/pprof/", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				log.Printf("batchsvc: pprof server: %v", err)
			}
		}()
	}
	mgr := serve.NewManager(*parallelism)
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			log.Fatalf("batchsvc: opening store: %v", err)
		}
		if err := mgr.Restore(st); err != nil {
			log.Fatalf("batchsvc: restoring sessions: %v", err)
		}
		if n := len(mgr.List()); n > 0 {
			log.Printf("batchsvc: restored %d sessions from %s", n, *dataDir)
		}
		defer st.Close()
	}
	// Every request context derives from connCtx, so cancelling it before
	// Shutdown releases long-lived SSE streams — otherwise Shutdown would
	// wait out its full timeout on any connected events client.
	connCtx, closeConns := context.WithCancel(context.Background())
	defer closeConns()
	srv := &http.Server{
		Addr:        *addr,
		Handler:     serve.NewAPI(mgr).Handler(),
		BaseContext: func(net.Listener) context.Context { return connCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("batchsvc: serving on %s (parallelism %d)", *addr, *parallelism)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("batchsvc: %v", err)
	case <-ctx.Done():
	}

	log.Print("batchsvc: shutting down; draining in-flight sessions")
	closeConns() // end SSE streams so Shutdown isn't pinned by them
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("batchsvc: shutdown: %v", err)
	}
	// Let running simulations finish so their reports land in the store (or
	// at least in the final log lines). A session still running when the
	// drain window closes will recover as failed on the next boot.
	done := make(chan struct{})
	go func() { mgr.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		log.Print("batchsvc: sessions still running after 15s; exiting anyway")
	}
	log.Print("batchsvc: bye")
}
