// Command batchsvc runs the multi-session batch computing service with its
// HTTP JSON API over the simulated cloud — the paper's Section 5 prototype
// grown into a front door that serves many concurrent scenario sessions.
//
// Usage:
//
//	batchsvc [-addr :8080] [-shards N] [-parallelism N] [-planner-parallelism N]
//	         [-data-dir DIR] [-schedule-cache-cap N] [-pprof PORT]
//	         [-wal-segment-bytes N] [-wal-segment-records N]
//	         [-compact-bytes N] [-compact-records N]
//	         [-max-sessions N] [-queue-depth N]
//	         [-degraded-probe-interval D] [-shutdown-timeout D]
//	         [-log-format text|json] [-trace-buffer N]
//	         [-distribute] [-shard-port-base P]
//	batchsvc -shard-server ADDR [-shard-index N] [-data-dir DIR] ...
//
// Each session carries its own configuration, so one process serves any
// mix of VM types, zones, policies, and seeds:
//
//	curl -X POST localhost:8080/api/sessions -d '{
//	  "name": "demo",
//	  "config": {"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 8,
//	             "seed": 1, "fit": {"samples": 2000, "seed": 42}}}'
//	curl -X POST localhost:8080/api/sessions/s-001/bags -d '{"app":"nanoconfinement","jobs":100,"seed":1}'
//	curl -X POST localhost:8080/api/sessions/s-001/run
//	curl localhost:8080/api/sessions/s-001          # status + live progress
//	curl -N localhost:8080/api/sessions/s-001/events # SSE progress stream
//	curl localhost:8080/api/sessions/s-001/report   # once done
//	curl -X DELETE localhost:8080/api/sessions/s-001 # cancels if running
//
// The /api/models endpoints expose the online model registry: versioned
// preemption models that learn from observed lifetimes. Register one (here
// via the tracegen | fitmodel pipeline), point sessions at it with
// "model_ref", and feed it observations; when the drift detector flags a
// change point, a refit publishes the next version while sessions pinned
// at older versions stay byte-identical:
//
//	tracegen -n 20 | fitmodel -i - -json | curl -X POST localhost:8080/api/models -d @-
//	curl -X POST localhost:8080/api/sessions -d '{
//	  "config": {"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 8,
//	             "seed": 1, "model_ref": "n1-highcpu-16-us-east1-b@latest"}}'
//	curl -X POST localhost:8080/api/models/n1-highcpu-16-us-east1-b/observations \
//	  -d '{"lifetimes": [0.5, 2.25, 23.1]}'
//	curl -X POST localhost:8080/api/models/n1-highcpu-16-us-east1-b/refit
//
// With -data-dir, the session lifecycle is durable: configs, bags, state
// transitions, completed reports, and the model registry (versions,
// observation high-water marks, detector state) are written to a
// snapshot+WAL store, and a restart resumes every non-running session —
// and the registry — exactly where it was (sessions that were mid-run
// recover as failed with a diagnostic).
//
// POST /api/sweep fans a scenario grid (VM types x zones x policies,
// optionally x model_refs) out across sessions and aggregates the
// comparison. SIGINT/SIGTERM drain in-flight runs for -shutdown-timeout
// before exiting; a second signal forces immediate exit.
//
// The store rotates its WAL into bounded segments and compacts in the
// background once the log crosses -compact-bytes/-compact-records, so
// long-lived processes bound both replay time and disk usage. If the disk
// fails persistently, the service degrades to read-only — mutating
// endpoints return 503 with Retry-After and /api/stats reports the
// degraded health — and recovers automatically when writes succeed again.
// -max-sessions and -queue-depth bound admission (429 when saturated).
//
// -shards N splits the service into N session-executor shards behind a
// stateless router: each shard owns its own session map, worker pool, and
// (with -data-dir) its own WAL at DIR (shard 0) and DIR/shard-00i, so
// fsyncs and degraded-mode faults are per shard. Sessions are placed by
// consistent hash on their id; reports are byte-identical at any shard
// count, and changing N between boots migrates only the minimal fraction
// of sessions at restore.
//
// -distribute takes the shard boundary across processes: shard 0 (the
// control plane) stays in this process, and shards 1..N-1 run as
// supervised subprocesses (`batchsvc -shard-server`) on loopback ports
// from -shard-port-base, each with its own WAL under DIR/shard-00i. The
// supervisor health-checks each shard and restarts it if it crashes or
// hangs — WAL replay makes the restart safe — while the router wraps every
// cross-process call in deadlines, retries, and a per-shard circuit
// breaker, and the registry replicates to the shards via a sequenced log
// with catch-up on reconnect. A dead shard degrades its own sessions to
// 503 (Retry-After set) and listings/stats/sweeps to partial results; the
// other shards keep serving. See the README's "Distributed operation &
// failure domains".
//
// -shard-server ADDR runs one such executor shard by hand (or under an
// external process manager) serving the shard protocol on ADDR; point the
// router process at it by running it with the same topology.
//
// Observability: GET /metrics renders every counter, gauge, and latency
// histogram (per-shard sessions, queue depth, WAL and DP-solve latency,
// breaker states, replication lag) in Prometheus text format, on the public
// listener and on the -pprof loopback mux; shard processes serve their own.
// Every API request carries an X-Trace-Id (honored inbound, minted
// otherwise) whose spans — edge, routing, shard execution, WAL persists —
// are retrievable at GET /api/trace/{id}, merged across shard processes;
// -trace-buffer sizes the in-memory span ring. All logs are structured
// (log/slog) with component/shard/session fields; -log-format picks
// text or JSON lines, and -distribute forwards both flags to the shard
// subprocesses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/store"
)

// fatal logs one structured error line and exits.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0),
		"max session simulations running concurrently")
	plannerParallelism := flag.Int("planner-parallelism", 0,
		"row-parallel worker count for cold DP checkpoint solves (0: GOMAXPROCS); "+
			"sessions can override per config via planner_parallelism")
	dataDir := flag.String("data-dir", "",
		"directory for the session snapshot+WAL store (empty: in-memory only)")
	cacheCap := flag.Int("schedule-cache-cap", policy.DefaultSharedCacheCapacity,
		"LRU bound (entries per artifact kind) of the process-wide schedule cache")
	pprofPort := flag.Int("pprof", 0,
		"localhost port for the net/http/pprof profiling server (0: disabled)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 15*time.Second,
		"graceful-drain window for HTTP shutdown, in-flight sessions, and shard "+
			"subprocesses; a second SIGINT/SIGTERM forces immediate exit")
	segmentBytes := flag.Int64("wal-segment-bytes", 64<<20,
		"rotate the WAL segment past this size (0: single unbounded segment)")
	segmentRecords := flag.Int("wal-segment-records", 0,
		"rotate the WAL segment past this many records (0: no count bound)")
	compactBytes := flag.Int64("compact-bytes", 256<<20,
		"background-compact the store once the WAL crosses this size (0: boot-only compaction)")
	compactRecords := flag.Int("compact-records", 0,
		"background-compact the store once the WAL holds this many records (0: no count bound)")
	maxSessions := flag.Int("max-sessions", 0,
		"bound on live sessions; further creates get 429 (0: unbounded)")
	queueDepth := flag.Int("queue-depth", 0,
		"bound on runs queued beyond the worker pool; further runs get 429 (0: unbounded)")
	probeInterval := flag.Duration("degraded-probe-interval", time.Second,
		"how often a degraded (read-only) service retries the store")
	shards := flag.Int("shards", 1,
		"session-executor shards; each owns its sessions, worker pool, and "+
			"(with -data-dir) its own WAL under DIR/shard-00N; sessions are "+
			"placed by consistent hash, so the count can change between boots")
	distribute := flag.Bool("distribute", false,
		"run shards 1..N-1 as supervised subprocesses (shard 0 stays in-process "+
			"as the control plane); requires -shards > 1")
	shardPortBase := flag.Int("shard-port-base", 18080,
		"with -distribute, shard i listens on 127.0.0.1:(base+i)")
	shardServer := flag.String("shard-server", "",
		"run as a single shard-executor server on this address (serving the shard "+
			"protocol for a -distribute router) instead of the public API")
	shardIndex := flag.Int("shard-index", 0,
		"with -shard-server, which router slot this shard serves (diagnostics only)")
	logFormat := flag.String("log-format", "text",
		"structured log encoding: text (logfmt-style) or json")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultTraceBuffer,
		"capacity of the in-memory trace span ring (oldest spans drop past it)")
	flag.Parse()
	if err := obs.InitLog(*logFormat, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "batchsvc: %v\n", err)
		os.Exit(1)
	}
	obs.DefaultTracer().SetCapacity(*traceBuffer)
	logger := obs.Logger("batchsvc")
	if *shards < 1 {
		fatal(logger, "-shards must be at least 1", "shards", *shards)
	}
	if *distribute && *shards < 2 {
		fatal(logger, "-distribute needs -shards of at least 2", "shards", *shards)
	}

	policy.SetSharedCacheCapacity(*cacheCap)
	policy.SetDefaultPlannerParallelism(*plannerParallelism)
	if *pprofPort > 0 {
		// Profiling stays off the public listener: its own mux on a
		// loopback-only port, so deployments never expose /debug/pprof by
		// accident.
		pprofAddr := fmt.Sprintf("127.0.0.1:%d", *pprofPort)
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Metrics ride the same loopback mux, so a deployment that keeps the
		// public listener lean can still be scraped via the -pprof port.
		mux.Handle("GET /metrics", obs.Default().Handler())
		go func() {
			logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", pprofAddr))
			if err := http.ListenAndServe(pprofAddr, mux); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	storeOpts := store.Options{
		SegmentMaxBytes:   *segmentBytes,
		SegmentMaxRecords: *segmentRecords,
		CompactAtBytes:    *compactBytes,
		CompactAtRecords:  *compactRecords,
	}
	openShard := func(dir string) *store.Log {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(logger, "creating store dir failed", "dir", dir, "err", err)
		}
		st, err := store.OpenOptions(dir, storeOpts)
		if err != nil {
			fatal(logger, "opening store failed", "dir", dir, "err", err)
		}
		return st
	}

	if *shardServer != "" {
		runShardServer(shardServerConfig{
			addr:            *shardServer,
			index:           *shardIndex,
			parallelism:     *parallelism,
			dataDir:         *dataDir,
			maxSessions:     *maxSessions,
			queueDepth:      *queueDepth,
			probeInterval:   *probeInterval,
			shutdownTimeout: *shutdownTimeout,
			openShard:       openShard,
		})
		return
	}

	// Build the shard topology: all-local by default; with -distribute,
	// shards 1..N-1 live behind loopback addresses owned by the supervisor.
	topology := make([]string, *shards)
	var sup *serve.Supervisor
	if *distribute {
		for i := 1; i < *shards; i++ {
			topology[i] = fmt.Sprintf("127.0.0.1:%d", *shardPortBase+i)
		}
		perParallelism := (*parallelism + *shards - 1) / *shards
		perCap := func(n int) int {
			if n <= 0 {
				return 0
			}
			return (n + *shards - 1) / *shards
		}
		self, err := os.Executable()
		if err != nil {
			fatal(logger, "resolving own binary for shard spawn failed", "err", err)
		}
		spawn := func(j int, shardAddr string) *exec.Cmd {
			shard := j + 1 // supervisor slot j supervises router shard j+1
			args := []string{
				"-shard-server", shardAddr,
				"-shard-index", strconv.Itoa(shard),
				"-parallelism", strconv.Itoa(perParallelism),
				"-planner-parallelism", strconv.Itoa(*plannerParallelism),
				"-schedule-cache-cap", strconv.Itoa(*cacheCap),
				"-max-sessions", strconv.Itoa(perCap(*maxSessions)),
				"-queue-depth", strconv.Itoa(perCap(*queueDepth)),
				"-degraded-probe-interval", probeInterval.String(),
				"-shutdown-timeout", shutdownTimeout.String(),
				"-wal-segment-bytes", strconv.FormatInt(*segmentBytes, 10),
				"-wal-segment-records", strconv.Itoa(*segmentRecords),
				"-compact-bytes", strconv.FormatInt(*compactBytes, 10),
				"-compact-records", strconv.Itoa(*compactRecords),
				"-log-format", *logFormat,
				"-trace-buffer", strconv.Itoa(*traceBuffer),
			}
			if *dataDir != "" {
				args = append(args, "-data-dir", store.ShardDir(*dataDir, shard))
			}
			cmd := exec.Command(self, args...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		}
		sup = serve.NewSupervisor(topology[1:], spawn, nil)
		if err := sup.Start(); err != nil {
			fatal(logger, "starting shard processes failed", "err", err)
		}
		logger.Info("supervising shard processes", "count", *shards-1,
			"port_first", *shardPortBase+1, "port_last", *shardPortBase+*shards-1)
	}
	mgr, err := serve.NewRouterTopology(topology, *parallelism, nil)
	if err != nil {
		fatal(logger, "building shard topology failed", "err", err)
	}
	mgr.SetMaxSessions(*maxSessions)
	mgr.SetQueueDepth(*queueDepth)
	mgr.SetProbeInterval(*probeInterval)
	if *dataDir != "" {
		stores := make([]serve.Store, *shards)
		for i := range stores {
			if topology[i] != "" {
				// A remote shard replays its own WAL in its own process.
				continue
			}
			st := openShard(store.ShardDir(*dataDir, i))
			defer st.Close()
			stores[i] = st
		}
		// Shard dirs beyond the configured count belong to a previous boot
		// with more shards: their sessions are re-homed into the live shards
		// and the stores drained, so shrinking -shards loses nothing. Sessions
		// can only be re-homed into local shards, so a distributed boot
		// refuses the migration rather than doing it half-way.
		extraIdx, err := store.FindShardDirs(*dataDir)
		if err != nil {
			fatal(logger, "scanning shard dirs failed", "err", err)
		}
		var extras []serve.Store
		for _, i := range extraIdx {
			if i < *shards {
				continue
			}
			if *distribute {
				fatal(logger, "data dir holds shard dirs beyond the configured count; "+
					"boot all-local (without -distribute) once to migrate the topology change",
					"data_dir", *dataDir, "shards", *shards)
			}
			st := openShard(store.ShardDir(*dataDir, i))
			defer st.Close()
			extras = append(extras, st)
		}
		if err := mgr.Restore(stores, extras...); err != nil {
			fatal(logger, "restoring sessions failed", "err", err)
		}
		if n := len(mgr.List()); n > 0 {
			logger.Info("restored sessions", "count", n, "data_dir", *dataDir, "shards", *shards)
		}
	}
	if *distribute {
		// Converge before serving: adopt the shards' restored id high-water
		// marks and push them the registry state, so the first request never
		// races the first replication tick.
		mgr.SyncRemotes()
	}
	defer mgr.Close()
	// Every request context derives from connCtx, so cancelling it before
	// Shutdown releases long-lived SSE streams — otherwise Shutdown would
	// wait out its full timeout on any connected events client.
	connCtx, closeConns := context.WithCancel(context.Background())
	defer closeConns()
	// The public mux: the API surface plus the metrics exposition. /metrics
	// sits outside the /api instrumentation so scrapes never perturb the
	// request latency series they read.
	publicMux := http.NewServeMux()
	publicMux.Handle("/", serve.NewAPI(mgr).Handler())
	publicMux.Handle("GET /metrics", obs.Default().Handler())
	srv := &http.Server{
		Addr:        *addr,
		Handler:     publicMux,
		BaseContext: func(net.Listener) context.Context { return connCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving", "addr", *addr, "shards", *shards, "parallelism", *parallelism)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if sup != nil {
			sup.Kill()
		}
		fatal(logger, "server failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down; draining in-flight sessions (signal again to force exit)",
		"drain_timeout", shutdownTimeout.String())
	// A second signal aborts the drain. stop() releases NotifyContext's
	// registration; our own watcher takes over so the forced path is
	// explicit and logged rather than the runtime's default kill.
	stop()
	force := make(chan os.Signal, 1)
	signal.Notify(force, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-force
		logger.Warn("second signal; forcing exit")
		if sup != nil {
			// Reap the shard fleet before dying: a forced exit must not leave
			// orphaned shard processes holding their ports.
			sup.Kill()
		}
		os.Exit(1)
	}()
	closeConns() // end SSE streams so Shutdown isn't pinned by them
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown failed", "err", err)
	}
	// Let running simulations finish so their reports land in the store (or
	// at least in the final log lines). A session still running when the
	// drain window closes will recover as failed on the next boot.
	done := make(chan struct{})
	go func() { mgr.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(*shutdownTimeout):
		logger.Warn("sessions still running past drain window; exiting anyway",
			"drain_timeout", shutdownTimeout.String())
	}
	if sup != nil {
		// Shard processes drain last: their own SIGTERM handlers run the same
		// graceful path this process just finished, and the supervisor reaps
		// every child (killing stragglers past the window) so no zombies and
		// no orphaned listeners survive this exit.
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), *shutdownTimeout)
		sup.Stop(drainCtx)
		cancelDrain()
	}
	logger.Info("bye")
}

// shardServerConfig carries the -shard-server flag set.
type shardServerConfig struct {
	addr            string
	index           int
	parallelism     int
	dataDir         string
	maxSessions     int
	queueDepth      int
	probeInterval   time.Duration
	shutdownTimeout time.Duration
	openShard       func(dir string) *store.Log
}

// runShardServer is the -shard-server mode: one executor shard (a Manager
// resolving models against a replication-fed replica) serving the shard
// protocol, with the same durable store and graceful-drain behavior as the
// full service. The router process supervises this one and replays the
// registry to it; WAL replay on restart makes a crash here a contained
// fault, not a data loss.
func runShardServer(cfg shardServerConfig) {
	logger := obs.Logger("batchsvc").With("shard", cfg.index)
	m := serve.NewShardManager(cfg.parallelism)
	m.SetShardIndex(cfg.index)
	m.SetMaxSessions(cfg.maxSessions)
	m.SetQueueDepth(cfg.queueDepth)
	m.SetProbeInterval(cfg.probeInterval)
	if cfg.dataDir != "" {
		st := cfg.openShard(cfg.dataDir)
		defer st.Close()
		if err := m.Restore(st); err != nil {
			fatal(logger, "restoring sessions failed", "err", err)
		}
		if n := len(m.List()); n > 0 {
			logger.Info("restored sessions", "count", n, "data_dir", cfg.dataDir)
		}
	}
	defer m.Close()
	connCtx, closeConns := context.WithCancel(context.Background())
	defer closeConns()
	srv := &http.Server{
		Addr:        cfg.addr,
		Handler:     serve.ShardHandler(m),
		BaseContext: func(net.Listener) context.Context { return connCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving shard protocol", "addr", cfg.addr, "parallelism", cfg.parallelism)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(logger, "shard server failed", "err", err)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain_timeout", cfg.shutdownTimeout.String())
	stop()
	closeConns()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown failed", "err", err)
	}
	done := make(chan struct{})
	go func() { m.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.shutdownTimeout):
		logger.Warn("sessions still running past drain window; exiting anyway",
			"drain_timeout", cfg.shutdownTimeout.String())
	}
	logger.Info("bye")
}
