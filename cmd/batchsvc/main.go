// Command batchsvc runs the multi-session batch computing service with its
// HTTP JSON API over the simulated cloud — the paper's Section 5 prototype
// grown into a front door that serves many concurrent scenario sessions.
//
// Usage:
//
//	batchsvc [-addr :8080] [-parallelism N]
//
// Each session carries its own configuration, so one process serves any
// mix of VM types, zones, policies, and seeds:
//
//	curl -X POST localhost:8080/api/sessions -d '{
//	  "name": "demo",
//	  "config": {"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 8,
//	             "seed": 1, "fit": {"samples": 2000, "seed": 42}}}'
//	curl -X POST localhost:8080/api/sessions/s-001/bags -d '{"app":"nanoconfinement","jobs":100,"seed":1}'
//	curl -X POST localhost:8080/api/sessions/s-001/run
//	curl localhost:8080/api/sessions/s-001          # status + live progress
//	curl localhost:8080/api/sessions/s-001/report   # once done
//
// POST /api/sweep fans a scenario grid (VM types x zones x policies) out
// across sessions and aggregates the comparison. SIGINT/SIGTERM drain
// in-flight runs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0),
		"max session simulations running concurrently")
	flag.Parse()

	mgr := serve.NewManager(*parallelism)
	srv := &http.Server{Addr: *addr, Handler: serve.NewAPI(mgr).Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("batchsvc: serving on %s (parallelism %d)", *addr, *parallelism)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("batchsvc: %v", err)
	case <-ctx.Done():
	}

	log.Print("batchsvc: shutting down; draining in-flight sessions")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("batchsvc: shutdown: %v", err)
	}
	// Let running simulations finish so their reports are not lost mid-run
	// (they are in-memory only; an abandoned run is unrecoverable anyway).
	done := make(chan struct{})
	go func() { mgr.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		log.Print("batchsvc: sessions still running after 15s; exiting anyway")
	}
	log.Print("batchsvc: bye")
}
