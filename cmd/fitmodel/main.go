// Command fitmodel fits the four candidate failure distributions of the
// paper's Figure 1 to a preemption dataset and prints their parameters and
// goodness of fit.
//
// Usage:
//
//	fitmodel [-i preemptions.csv] [-type n1-highcpu-16] [-zone us-east1-b]
//
// Without -i it generates a synthetic trace for the selected scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/fit"
	"repro/internal/trace"
)

func main() {
	in := flag.String("i", "", "input CSV (default: generate synthetic data)")
	vmType := flag.String("type", string(trace.HighCPU16), "VM type filter")
	zone := flag.String("zone", string(trace.USEast1B), "zone filter")
	n := flag.Int("n", 2000, "synthetic sample size (when no -i)")
	seed := flag.Uint64("seed", 42, "RNG seed (when no -i)")
	extended := flag.Bool("extended", false, "also fit lognormal, gamma, and segmented-linear")
	bootstrap := flag.Int("bootstrap", 0, "bootstrap iterations for bathtub parameter CIs (0 = off)")
	flag.Parse()

	var samples []float64
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		ds, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		samples = ds.Filter(func(s trace.Scenario) bool {
			return string(s.Type) == *vmType && string(s.Zone) == *zone
		})
		if len(samples) == 0 {
			fatal(fmt.Errorf("no records for type=%s zone=%s", *vmType, *zone))
		}
	} else {
		sc := trace.Scenario{
			Type: trace.VMType(*vmType), Zone: trace.Zone(*zone),
			TimeOfDay: trace.Day, Workload: trace.Busy,
		}
		samples = trace.Generate(sc, *n, *seed)
	}

	fitAll := fit.FitAll
	if *extended {
		fitAll = fit.FitAllExtended
	}
	reports, err := fitAll(samples, trace.Deadline)
	if err != nil {
		fatal(err)
	}
	type row struct {
		fam string
		rep fit.FitReport
	}
	var rows []row
	for fam, rep := range reports {
		rows = append(rows, row{fam, rep})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rep.SSE < rows[j].rep.SSE })

	fmt.Printf("fitted %d lifetimes (%s, %s), ranked by SSE:\n\n", len(samples), *vmType, *zone)
	for _, r := range rows {
		fmt.Printf("%-17s SSE=%8.3f  RMSE=%.4f  R2=%.4f  KS=%.4f  params=%v\n",
			r.fam, r.rep.SSE, r.rep.RMSE, r.rep.R2, r.rep.KS, fmtParams(r.rep.Params))
	}
	fmt.Printf("\nbest fit: %s\n", rows[0].fam)

	if *bootstrap > 0 {
		cis, err := fit.BootstrapBathtub(samples, trace.Deadline, *bootstrap, 0.9, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbathtub parameter 90%% bootstrap intervals (%d refits):\n", *bootstrap)
		for _, ci := range cis {
			fmt.Printf("  %-5s %8.4f  [%8.4f, %8.4f]\n", ci.Name, ci.Point, ci.Lo, ci.Hi)
		}
	}
}

func fmtParams(p []float64) string {
	s := "["
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g", v)
	}
	return s + "]"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fitmodel: %v\n", err)
	os.Exit(1)
}
