// Command fitmodel fits the four candidate failure distributions of the
// paper's Figure 1 to a preemption dataset and prints their parameters and
// goodness of fit.
//
// Usage:
//
//	fitmodel [-i preemptions.csv] [-type n1-highcpu-16] [-zone us-east1-b]
//
// Without -i it generates a synthetic trace for the selected scenario;
// "-i -" reads the CSV from stdin, so tracegen pipes straight in.
//
// With -json it instead emits a registry-compatible model document — the
// bathtub fit packaged as a POST /api/models request body — so a fitted
// model can be piped into a running batchsvc:
//
//	tracegen -n 20 | fitmodel -i - -json | curl -X POST localhost:8080/api/models -d @-
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/dist"
	"repro/internal/fit"
	"repro/internal/registry"
	"repro/internal/trace"
)

func main() {
	in := flag.String("i", "", "input CSV, \"-\" for stdin (default: generate synthetic data)")
	vmType := flag.String("type", string(trace.HighCPU16), "VM type filter")
	zone := flag.String("zone", string(trace.USEast1B), "zone filter")
	n := flag.Int("n", 2000, "synthetic sample size (when no -i)")
	seed := flag.Uint64("seed", 42, "RNG seed (when no -i)")
	extended := flag.Bool("extended", false, "also fit lognormal, gamma, and segmented-linear")
	bootstrap := flag.Int("bootstrap", 0, "bootstrap iterations for bathtub parameter CIs (0 = off)")
	jsonOut := flag.Bool("json", false,
		"emit the bathtub fit as a registry model document (a POST /api/models body) instead of the report")
	name := flag.String("name", "", "model name for -json (default: <type>-<zone>)")
	flag.Parse()

	var samples []float64
	if *in != "" {
		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		ds, err := trace.ReadCSV(r)
		if err != nil {
			fatal(err)
		}
		samples = ds.Filter(func(s trace.Scenario) bool {
			return string(s.Type) == *vmType && string(s.Zone) == *zone
		})
		if len(samples) == 0 {
			fatal(fmt.Errorf("no records for type=%s zone=%s", *vmType, *zone))
		}
	} else {
		sc := trace.Scenario{
			Type: trace.VMType(*vmType), Zone: trace.Zone(*zone),
			TimeOfDay: trace.Day, Workload: trace.Busy,
		}
		samples = trace.Generate(sc, *n, *seed)
	}

	if *jsonOut {
		rep, err := fit.FitBathtub(samples, trace.Deadline)
		if err != nil {
			fatal(err)
		}
		doc := struct {
			Name   string          `json:"name"`
			VMType string          `json:"vm_type"`
			Zone   string          `json:"zone"`
			Model  registry.Params `json:"model"`
		}{Name: *name, VMType: *vmType, Zone: *zone, Model: registry.ParamsOf(rep.Dist.(dist.Bathtub))}
		if doc.Name == "" {
			doc.Name = *vmType + "-" + *zone
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fitmodel: bathtub fit of %d lifetimes (%s, %s), KS=%.4f\n",
			len(samples), *vmType, *zone, rep.KS)
		return
	}

	fitAll := fit.FitAll
	if *extended {
		fitAll = fit.FitAllExtended
	}
	reports, err := fitAll(samples, trace.Deadline)
	if err != nil {
		fatal(err)
	}
	type row struct {
		fam string
		rep fit.FitReport
	}
	var rows []row
	for fam, rep := range reports {
		rows = append(rows, row{fam, rep})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rep.SSE < rows[j].rep.SSE })

	fmt.Printf("fitted %d lifetimes (%s, %s), ranked by SSE:\n\n", len(samples), *vmType, *zone)
	for _, r := range rows {
		fmt.Printf("%-17s SSE=%8.3f  RMSE=%.4f  R2=%.4f  KS=%.4f  params=%v\n",
			r.fam, r.rep.SSE, r.rep.RMSE, r.rep.R2, r.rep.KS, fmtParams(r.rep.Params))
	}
	fmt.Printf("\nbest fit: %s\n", rows[0].fam)

	if *bootstrap > 0 {
		cis, err := fit.BootstrapBathtub(samples, trace.Deadline, *bootstrap, 0.9, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbathtub parameter 90%% bootstrap intervals (%d refits):\n", *bootstrap)
		for _, ci := range cis {
			fmt.Printf("  %-5s %8.4f  [%8.4f, %8.4f]\n", ci.Name, ci.Point, ci.Lo, ci.Hi)
		}
	}
}

func fmtParams(p []float64) string {
	s := "["
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g", v)
	}
	return s + "]"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fitmodel: %v\n", err)
	os.Exit(1)
}
