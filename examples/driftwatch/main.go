// Driftwatch: detecting provider policy changes through the live service
// (Section 8).
//
// A long-running service should notice when the cloud's preemption behavior
// stops matching its fitted model ("What if preemption characteristics
// change?"). Earlier revisions of this example called the changepoint and
// fit libraries directly; the service now owns that loop, so this example
// drives it the way an operator would — entirely over the HTTP API:
//
//  1. register a model in the online registry (fit recipe, auto-refit on),
//  2. create a session pinned to version 1,
//  3. stream observed lifetimes in through POST .../observations while the
//     provider silently switches from bathtub to uniform reclamation,
//  4. watch /api/stats until the change point flags and the background
//     auto-refit publishes version 2, and
//  5. show that a new @latest session picks up v2 while the v1-pinned
//     session's report is untouched.
//
// Run with: go run ./examples/driftwatch
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/registry"
	"repro/internal/serve"
	"repro/internal/trace"
)

const modelName = "us-east1-b"

func main() {
	// An in-process service instance on a loopback port: the same handler
	// batchsvc serves.
	mgr := serve.NewManager(2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.NewAPI(mgr).Handler()}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("service on %s\n", base)

	// 1. Register: the service fits version 1 from study data and starts
	// the drift detector against it. Auto-refit waits for 300 post-flag
	// observations before publishing a new version.
	post(base+"/api/models", map[string]any{
		"name": modelName, "vm_type": "n1-highcpu-16", "zone": "us-east1-b",
		"fit":        map[string]any{"samples": 2000, "seed": 42},
		"auto_refit": true, "min_refit_samples": 300,
	})
	info := getModel(base)
	v1 := info.Versions[0]
	fmt.Printf("registered %s@v1 (family %s, %d samples, KS=%.4f)\n",
		modelName, v1.Family, v1.Samples, v1.KS)

	// 2. A session created now pins v1 forever.
	var created struct {
		ID     string `json:"id"`
		Config struct {
			ModelRef string `json:"model_ref"`
		} `json:"config"`
	}
	post(base+"/api/sessions", map[string]any{
		"name": "pinned-v1",
		"config": map[string]any{
			"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 4,
			"seed": 1, "model_ref": modelName,
		},
	}, &created)
	post(base+"/api/sessions/"+created.ID+"/bags", map[string]any{"app": "shapes", "jobs": 20, "seed": 7})
	post(base+"/api/sessions/"+created.ID+"/run", nil)
	fmt.Printf("session %s pinned to %s\n", created.ID, created.Config.ModelRef)

	// 3. Stream observations: the provider runs its true (bathtub-like)
	// policy for 400 lifetimes, then silently switches to uniform
	// reclamation.
	sc := trace.DefaultScenario()
	truth := trace.GroundTruth(sc)
	changed := dist.NewUniform(trace.Deadline)
	rng := mathx.NewRNG(7)
	const regimeSwitch = 400
	flaggedAt := -1
	for i := 0; i < 1200; i += 50 {
		batch := make([]float64, 50)
		for j := range batch {
			if i+j < regimeSwitch {
				batch[j] = truth.Sample(rng)
			} else {
				batch[j] = dist.Sample(changed, rng, trace.Deadline)
			}
		}
		var res struct {
			Observations int  `json:"observations"`
			NewlyFlagged bool `json:"newly_flagged"`
		}
		post(base+"/api/models/"+modelName+"/observations", map[string]any{"lifetimes": batch}, &res)
		if res.NewlyFlagged {
			flaggedAt = res.Observations
			fmt.Printf("change point flagged after %d observations (regime switched at %d)\n",
				flaggedAt, regimeSwitch)
		}
	}
	if flaggedAt < 0 {
		log.Fatal("drift was not detected")
	}

	// 4. Watch /api/stats until the background auto-refit publishes v2.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var stats struct {
			Models struct {
				VersionsPublished   int `json:"versions_published"`
				ChangePointsFlagged int `json:"change_points_flagged"`
				RefitsRun           int `json:"refits_run"`
			} `json:"models"`
		}
		get(base+"/api/stats", &stats)
		if stats.Models.RefitsRun >= 1 {
			fmt.Printf("stats: %d versions published, %d change points flagged, %d refits run\n",
				stats.Models.VersionsPublished, stats.Models.ChangePointsFlagged, stats.Models.RefitsRun)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("auto-refit did not publish a new version")
		}
		time.Sleep(10 * time.Millisecond)
	}
	info = getModel(base)
	v2 := info.Versions[len(info.Versions)-1]
	fmt.Printf("auto-refit published %s@v%d (source %s, %d samples, KS=%.4f, fitted at %s)\n",
		modelName, v2.Number, v2.Source, v2.Samples, v2.KS, v2.FittedAt)

	// 5. Old sessions keep v1; new @latest sessions get v2.
	var latest struct {
		Config struct {
			ModelRef string `json:"model_ref"`
		} `json:"config"`
	}
	post(base+"/api/sessions", map[string]any{
		"name": "tracks-latest",
		"config": map[string]any{
			"vm_type": "n1-highcpu-16", "zone": "us-east1-b", "vms": 4,
			"seed": 1, "model_ref": modelName + "@latest",
		},
	}, &latest)
	fmt.Printf("new session pins %s; the earlier session stays on %s\n",
		latest.Config.ModelRef, created.Config.ModelRef)
	fmt.Printf("old model E[L]=%.2fh, refitted E[L]=%.2fh (uniform truth: 12h)\n",
		expectedLifetime(v1), expectedLifetime(v2))
}

// getModel fetches the registry entry in its wire form.
func getModel(base string) registry.Info {
	var info registry.Info
	get(base+"/api/models/"+modelName, &info)
	return info
}

// expectedLifetime is the normalized E[T] of a version's bathtub — the
// quantity whose shift makes the refit visible at a glance.
func expectedLifetime(v registry.Version) float64 {
	m, err := v.Params.Model()
	if err != nil {
		log.Fatal(err)
	}
	return m.NormalizedExpectedLifetime()
}

// post sends a JSON body and decodes the response into out (when given),
// failing hard on any non-2xx status — this is a demo, not a client
// library.
func post(url string, body any, out ...any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %s (%s)", url, resp.Status, e.Error)
	}
	if len(out) > 0 {
		if err := json.NewDecoder(resp.Body).Decode(out[0]); err != nil {
			log.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("GET %s: decoding response: %v", url, err)
	}
}
