// Driftwatch: detecting provider policy changes (Section 8).
//
// A long-running service should notice when the cloud's preemption behavior
// stops matching its fitted model ("What if preemption characteristics
// change?"). This example fits a model, streams preemption observations
// through the change-point detector while the provider silently switches
// from bathtub to uniform reclamation, and refits once the detector fires.
//
// Run with: go run ./examples/driftwatch
package main

import (
	"fmt"
	"log"

	"repro/internal/changepoint"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mathx"
	"repro/internal/trace"
)

func main() {
	sc := trace.DefaultScenario()
	model, rep, err := core.Fit(trace.Generate(sc, 2000, 42), trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}
	fmt.Printf("fitted model %v (R2=%.4f)\n", model, rep.R2)

	det := changepoint.New(model, changepoint.DefaultConfig())
	rng := mathx.NewRNG(7)
	truth := trace.GroundTruth(sc)
	changed := dist.NewUniform(trace.Deadline)

	const regimeSwitch = 400
	var refitBuf []float64
	for i := 0; i < 1200; i++ {
		var lifetime float64
		if i < regimeSwitch {
			lifetime = truth.Sample(rng)
		} else {
			// The provider silently changes policy: uniform preemptions.
			lifetime = dist.Sample(changed, rng, trace.Deadline)
		}
		if det.Flagged() {
			refitBuf = append(refitBuf, lifetime)
			continue
		}
		if det.Observe(lifetime) {
			fmt.Printf("change point flagged after %d observations (regime switched at %d)\n",
				det.FlaggedAt(), regimeSwitch)
		}
	}
	if !det.Flagged() {
		log.Fatal("drift was not detected")
	}

	// Refit on post-change observations and resume monitoring.
	for len(refitBuf) < 300 {
		refitBuf = append(refitBuf, dist.Sample(changed, rng, trace.Deadline))
	}
	newModel, newRep, err := core.Fit(refitBuf, trace.Deadline)
	if err != nil {
		log.Fatalf("refitting: %v", err)
	}
	fmt.Printf("refitted model %v (R2=%.4f)\n", newModel, newRep.R2)
	det.Reset(newModel)

	// The refitted model should track the new regime without new flags.
	alarms := 0
	for i := 0; i < 600; i++ {
		if det.Observe(dist.Sample(changed, rng, trace.Deadline)) {
			alarms++
		}
	}
	fmt.Printf("monitoring after refit: %d false alarms in 600 observations\n", alarms)
	fmt.Printf("old model E[L]=%.2fh, refitted E[L]=%.2fh (uniform truth: 12h)\n",
		model.NormalizedExpectedLifetime(), newModel.NormalizedExpectedLifetime())
}
