// Replay: drive the simulator from a recorded preemption dataset.
//
// The paper published its preemption measurements; this example shows the
// intended workflow for such data: generate (or load) a CSV dataset, build
// a replay provider whose preemptions follow the recorded lifetimes
// verbatim, observe preemptions through the provider, and fit the model to
// what was observed — the loop a production deployment runs continuously.
//
// Run with: go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. A recorded study. In practice: trace.ReadCSV(file) over the
	// published dataset; here we generate one and round-trip it through
	// CSV to exercise the same path.
	ds := trace.GenerateDataset(12, 2024)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := trace.ReadCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s\n", loaded)

	// 2. Replay it through the cloud simulator.
	src, err := cloud.NewReplaySource(loaded)
	if err != nil {
		log.Fatal(err)
	}
	engine := sim.NewEngine()
	engine.RunUntil(9) // daytime launches
	provider := cloud.NewReplayProvider(engine, src, trace.Busy)

	sc := trace.DefaultScenario()
	const n = 240
	vms := make([]*cloud.VM, n)
	for i := range vms {
		vm, err := provider.Launch(sc.Type, sc.Zone, true)
		if err != nil {
			log.Fatal(err)
		}
		vms[i] = vm
	}
	engine.Run()

	// 3. Observe the preemptions the replayed cloud produced.
	lifetimes := make([]float64, 0, n)
	for _, vm := range vms {
		if vm.State == cloud.VMPreempted {
			lifetimes = append(lifetimes, vm.EndedAt-vm.LaunchedAt)
		}
	}
	fmt.Printf("observed %d preemptions through the replayed cloud\n", len(lifetimes))

	// 4. Fit the model to the observations, as the service would.
	model, rep, err := core.Fit(lifetimes, trace.Deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted %v (R2=%.4f)\n", model, rep.R2)
	fmt.Printf("P(preempted within 6h)=%.3f, expected lifetime %.2fh\n",
		model.CDF(6), model.NormalizedExpectedLifetime())
}
