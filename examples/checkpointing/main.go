// Checkpointing: the DP checkpoint schedule of Section 4.3.
//
// For bathtub failure rates the optimal checkpoint cadence is non-uniform:
// frequent while the VM is young (high infant preemption rate), sparse in
// the stable middle, frequent again near the 24h deadline. This example
// prints the schedule for the paper's 5-hour job and compares the expected
// overhead against the Young-Daly baseline that assumes memoryless
// failures (MTTF = 1 hour).
//
// Run with: go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func main() {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}
	const (
		delta = 1.0 / 60 // 1-minute checkpoint cost, as in the paper
		step  = 1.0 / 60 // 1-minute DP resolution
	)
	dp := policy.NewCheckpointPlanner(model, delta, step)

	sched := dp.Plan(5, 0)
	fmt.Println("optimal checkpoint intervals for a 5h job on a fresh VM:")
	fmt.Print("  ")
	for i, iv := range sched.Intervals {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%.0fmin", iv*60)
	}
	fmt.Printf("\n  (%d checkpoints; paper's example: 15, 28, 38, 59, 128 min)\n", sched.NumCheckpoints())
	fmt.Printf("  expected makespan %.3fh (overhead %.1f%%)\n\n",
		sched.ExpectedMakespan, dp.OverheadPercent(5, 0))

	tau := policy.YoungDalyInterval(delta, 1.0)
	yd := policy.NewFixedIntervalEvaluator(model, delta, tau, step)
	fmt.Printf("Young-Daly baseline: fixed %.0f-minute interval (MTTF=1h)\n\n", tau*60)

	fmt.Println("expected overhead of a 4h job by start age (Figure 8a):")
	for _, s := range []float64{0, 2, 5, 10, 15} {
		fmt.Printf("  start %4.1fh: ours %5.1f%%  young-daly %5.1f%%\n",
			s, dp.OverheadPercent(4, s), yd.OverheadPercent(4, s))
	}

	fmt.Println("\nschedules adapt to the VM age at job start:")
	for _, s := range []float64{0, 10} {
		sc := dp.Plan(3, s)
		fmt.Printf("  3h job at age %4.1fh: %d checkpoints, first interval %.0fmin\n",
			s, sc.NumCheckpoints(), sc.Intervals[0]*60)
	}
}
