// Scheduling: the VM reuse policy of Section 4.2.
//
// A long-running service must repeatedly decide whether the next job should
// run on an already-running VM (whose age it knows) or on a freshly
// launched one. This example sweeps VM ages and job lengths and prints the
// policy's decisions, its crossover age for the paper's 6-hour example, and
// the failure-probability comparison against the memoryless baseline.
//
// Run with: go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/trace"
)

func main() {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}
	sched := policy.NewFailureAwareScheduler(model)
	base := policy.MemorylessScheduler{}

	fmt.Println("reuse decision for a 6h job by VM age:")
	for _, age := range []float64{0, 4, 8, 12, 16, 17, 18, 20, 23} {
		d := sched.Decide(age, 6)
		verdict := "REUSE"
		if !sched.ShouldReuse(age, 6) {
			verdict = "NEW-VM"
		}
		fmt.Printf("  age %4.1fh: %-7s P(fail|reuse)=%.3f P(fail|new)=%.3f\n",
			age, verdict, d.FailureProbVM, d.FailureProbNew)
	}
	fmt.Printf("\ncrossover age for 6h jobs: %.1fh (paper: ~18h)\n", sched.CrossoverAge(6))

	fmt.Println("\nmaximum job length T* that should reuse, by VM age:")
	for _, age := range []float64{2, 6, 10, 14, 18, 22} {
		fmt.Printf("  age %4.1fh: T* = %.1fh\n", age, sched.CrossoverJobLength(age))
	}

	fmt.Println("\nmean failure probability across start times (Figure 6):")
	for _, J := range []float64{2, 4, 6, 8, 12} {
		ours := policy.MeanFailureProb(sched, model, J, 96)
		mem := policy.MeanFailureProb(base, model, J, 96)
		fmt.Printf("  %4.1fh job: ours %.3f vs memoryless %.3f (%.1fx lower)\n",
			J, ours, mem, mem/ours)
	}
}
