// Quickstart: fit the constrained-preemption model to observed lifetimes
// and query it.
//
// This walks the core loop of the library: generate (or load) preemption
// observations, fit the paper's bathtub model (Equation 1), and ask the
// questions a transient-computing system needs answered — preemption
// probabilities, the expected lifetime (Equation 3), and expected job
// makespans (Equations 7-8).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// 1. Observations. In production these come from your own preemption
	// history; here we draw from the synthetic study's ground truth for
	// the paper's headline configuration (n1-highcpu-16, us-east1-b).
	scenario := trace.DefaultScenario()
	lifetimes := trace.Generate(scenario, 500, 7)
	fmt.Printf("observed %d preemptions of %s\n", len(lifetimes), scenario)

	// 2. Fit the bathtub model.
	model, report, err := core.Fit(lifetimes, trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}
	bt := model.Bathtub()
	fmt.Printf("fitted: A=%.3f tau1=%.3fh tau2=%.3fh b=%.2fh (R2=%.4f)\n",
		bt.A, bt.Tau1, bt.Tau2, bt.B, report.R2)

	// 3. Query preemption behavior.
	fmt.Printf("\nP(preempted within  1h) = %.3f\n", model.CDF(1))
	fmt.Printf("P(preempted within  6h) = %.3f\n", model.CDF(6))
	fmt.Printf("P(preempted within 23h) = %.3f\n", model.CDF(23))
	fmt.Printf("expected lifetime (Eq 3) = %.2fh\n", model.NormalizedExpectedLifetime())

	t1, t2 := model.PhaseBoundaries()
	fmt.Printf("preemption phases: initial [0, %.1fh), stable [%.1fh, %.1fh), deadline [%.1fh, 24h]\n",
		t1, t1, t2, t2)

	// 4. Job planning: how long will a 6-hour job really take?
	fmt.Printf("\n6h job on a fresh VM:   E[makespan] = %.2fh, P(failure) = %.3f\n",
		model.ExpectedMakespan(6), model.ConditionalFailure(0, 6))
	fmt.Printf("6h job at VM age 8h:    E[makespan] = %.2fh, P(failure) = %.3f\n",
		model.ExpectedMakespanAt(8, 6), model.ConditionalFailure(8, 6))
	fmt.Printf("6h job at VM age 19h:   P(failure) = %.3f (crosses the 24h deadline)\n",
		model.ConditionalFailure(19, 6))
}
