// Batchservice: the multi-session batch computing service of Section 5,
// driven through its HTTP API.
//
// This launches the service over the simulated cloud and exercises the
// session workflow end to end: two sessions with different configurations
// (preemptible VMs with the model-driven reuse policy vs a conventional
// on-demand deployment, the Figure 9a contrast) run CONCURRENTLY in one
// process, progress is polled while they run, and the final reports are
// compared. A sweep then fans the same bag across a VM-type x policy grid
// and aggregates the comparison in one call.
//
// Run with: go run ./examples/batchservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Fit the preemption model once, as the paper's service does, and hand
	// its parameters to every session inline.
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}
	bt := model.Bathtub()
	params := map[string]any{"a": bt.A, "tau1": bt.Tau1, "tau2": bt.Tau2, "b": bt.B, "l": bt.L}

	srv := httptest.NewServer(serve.NewAPI(serve.NewManager(0)).Handler())
	defer srv.Close()

	request := func(method, path string, body any) map[string]any {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				log.Fatal(err)
			}
		}
		req, err := http.NewRequest(method, srv.URL+path, &buf)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			log.Fatalf("%s %s: %v", method, path, out)
		}
		return out
	}

	app := workload.Nanoconfinement

	// Create both sessions: same workload, different deployments.
	mkSession := func(name, policy string) string {
		out := request("POST", "/api/sessions", map[string]any{
			"name": name,
			"config": map[string]any{
				"vm_type": string(trace.HighCPU32), "zone": string(trace.USEast1B),
				"vms": 32, "gang_size": 2, // 2 x n1-highcpu-32 per 64-core job
				"policy": policy, "seed": 7, "model": params,
			},
		})
		id := out["id"].(string)
		request("POST", "/api/sessions/"+id+"/bags",
			map[string]any{"app": app.Name, "jobs": 100, "jitter": 0.03, "seed": 1})
		return id
	}
	pre := mkSession("preemptible-reuse", "reuse")
	od := mkSession("on-demand", "on-demand")

	// Start both, then poll: they simulate concurrently on the worker pool.
	request("POST", "/api/sessions/"+pre+"/run", nil)
	request("POST", "/api/sessions/"+od+"/run", nil)
	fmt.Printf("bag of 100 %s jobs on 32x %s, two concurrent sessions:\n", app.Name, trace.HighCPU32)
	reports := map[string]map[string]any{}
	for len(reports) < 2 {
		time.Sleep(5 * time.Millisecond)
		for _, id := range []string{pre, od} {
			if reports[id] != nil {
				continue
			}
			st := request("GET", "/api/sessions/"+id, nil)
			if st["state"] == "failed" {
				log.Fatalf("session %s failed: %v", id, st["error"])
			}
			if st["state"] == "done" {
				reports[id] = request("GET", "/api/sessions/"+id+"/report", nil)
			} else if p, ok := st["progress"].(map[string]any); ok {
				fmt.Printf("  %-18s t=%5.1fh  %3.0f/%3.0f jobs  $%.2f so far\n",
					st["name"], p["virtual_hours"], p["jobs_done"], p["jobs_total"], p["cost_so_far_usd"])
			}
		}
	}

	p, o := reports[pre], reports[od]
	fmt.Printf("\n  preemptible: $%.4f/job, %v preemptions, makespan %.2fh (+%.1f%%)\n",
		p["cost_per_job"], p["preemptions"], p["makespan_hours"], p["increase_pct"])
	fmt.Printf("  on-demand:   $%.4f/job, %v preemptions, makespan %.2fh\n",
		o["cost_per_job"], o["preemptions"], o["makespan_hours"])
	ratio := o["cost_per_job"].(float64) / p["cost_per_job"].(float64)
	fmt.Printf("\n  our service is %.1fx cheaper (paper: ~5x)\n", ratio)

	// The same comparison as one sweep over a scenario grid.
	sweep := request("POST", "/api/sweep", map[string]any{
		"vm_types": []string{string(trace.HighCPU16), string(trace.HighCPU32)},
		"policies": []string{"reuse", "on-demand"},
		"vms":      32, "seed": 7, "model": params,
		"bag": map[string]any{"app": app.Name, "jobs": 50, "jitter": 0.03, "seed": 1},
	})
	fmt.Printf("\nsweep: %s x {reuse, on-demand}, 50 jobs per cell:\n", "{hc16, hc32}")
	cells := sweep["cells"].([]any)
	for _, c := range cells {
		cell := c.(map[string]any)
		rep := cell["report"].(map[string]any)
		fmt.Printf("  %-14s %-10s $%.4f/job  makespan %5.2fh  %v preemptions\n",
			cell["vm_type"], cell["policy"],
			rep["cost_per_job"], rep["makespan_hours"], rep["preemptions"])
	}
	fmt.Printf("  cheapest: %v, fastest: %v\n", sweep["cheapest_session"], sweep["fastest_session"])
}
