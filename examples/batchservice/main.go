// Batchservice: the multi-session batch computing service of Section 5,
// driven through its HTTP API.
//
// This launches the service over the simulated cloud and exercises the
// session workflow end to end: two sessions with different configurations
// (preemptible VMs with the model-driven reuse policy vs a conventional
// on-demand deployment, the Figure 9a contrast) run CONCURRENTLY in one
// process, their progress arrives over Server-Sent Event streams (no
// polling), and the final reports are compared. A third session is
// cancelled mid-run via DELETE to demonstrate the cancellable lifecycle,
// and a sweep then fans the same bag across a VM-type x policy grid and
// aggregates the comparison in one call.
//
// Run with: go run ./examples/batchservice
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Fit the preemption model once, as the paper's service does, and hand
	// its parameters to every session inline.
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}
	bt := model.Bathtub()
	params := map[string]any{"a": bt.A, "tau1": bt.Tau1, "tau2": bt.Tau2, "b": bt.B, "l": bt.L}

	srv := httptest.NewServer(serve.NewAPI(serve.NewManager(0)).Handler())
	defer srv.Close()

	request := func(method, path string, body any) map[string]any {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				log.Fatal(err)
			}
		}
		req, err := http.NewRequest(method, srv.URL+path, &buf)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			log.Fatalf("%s %s: %v", method, path, out)
		}
		return out
	}

	app := workload.Nanoconfinement

	// Create the sessions: same workload, different deployments.
	mkSession := func(name, policy string) string {
		out := request("POST", "/api/sessions", map[string]any{
			"name": name,
			"config": map[string]any{
				"vm_type": string(trace.HighCPU32), "zone": string(trace.USEast1B),
				"vms": 32, "gang_size": 2, // 2 x n1-highcpu-32 per 64-core job
				"policy": policy, "seed": 7, "model": params,
				"progress_every": 512, // tighter SSE cadence for the demo
			},
		})
		id := out["id"].(string)
		request("POST", "/api/sessions/"+id+"/bags",
			map[string]any{"app": app.Name, "jobs": 100, "jitter": 0.03, "seed": 1})
		return id
	}
	pre := mkSession("preemptible-reuse", "reuse")
	od := mkSession("on-demand", "on-demand")

	// stream consumes a session's SSE feed, printing progress as it
	// arrives, and returns the final state once the server closes the
	// stream — no busy-polling anywhere. The first progress event (if any)
	// is signalled on started, so callers can synchronize with the run.
	stream := func(id string, started chan<- struct{}, done chan<- string) {
		resp, err := http.Get(srv.URL + "/api/sessions/" + id + "/events")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		event, state := "", ""
		printed := 0
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var payload map[string]any
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &payload); err != nil {
					log.Fatal(err)
				}
				switch event {
				case "progress":
					if printed == 0 && started != nil {
						close(started)
						started = nil
					}
					if printed%8 == 0 { // don't flood the terminal
						fmt.Printf("  %-18s t=%5.1fh  %3.0f/%3.0f jobs  $%.2f so far\n",
							id, payload["virtual_hours"], payload["jobs_done"],
							payload["jobs_total"], payload["cost_so_far_usd"])
					}
					printed++
				case "state":
					state, _ = payload["state"].(string)
				}
			}
		}
		done <- state
	}

	// Start both, then watch both event streams concurrently.
	request("POST", "/api/sessions/"+pre+"/run", nil)
	request("POST", "/api/sessions/"+od+"/run", nil)
	fmt.Printf("bag of 100 %s jobs on 32x %s, two concurrent sessions (SSE progress):\n",
		app.Name, trace.HighCPU32)
	preDone, odDone := make(chan string, 1), make(chan string, 1)
	go stream(pre, nil, preDone)
	go stream(od, nil, odDone)
	if st := <-preDone; st != "done" {
		log.Fatalf("session %s ended %s", pre, st)
	}
	if st := <-odDone; st != "done" {
		log.Fatalf("session %s ended %s", od, st)
	}

	p := request("GET", "/api/sessions/"+pre+"/report", nil)
	o := request("GET", "/api/sessions/"+od+"/report", nil)
	fmt.Printf("\n  preemptible: $%.4f/job, %v preemptions, makespan %.2fh (+%.1f%%)\n",
		p["cost_per_job"], p["preemptions"], p["makespan_hours"], p["increase_pct"])
	fmt.Printf("  on-demand:   $%.4f/job, %v preemptions, makespan %.2fh\n",
		o["cost_per_job"], o["preemptions"], o["makespan_hours"])
	ratio := o["cost_per_job"].(float64) / p["cost_per_job"].(float64)
	fmt.Printf("\n  our service is %.1fx cheaper (paper: ~5x)\n", ratio)

	// Cancellation: start a big session, wait for its first progress event,
	// then DELETE it mid-run. The delete cancels the simulation within one
	// progress interval and removes the session.
	doomed := mkSession("doomed", "reuse")
	request("POST", "/api/sessions/"+doomed+"/bags",
		map[string]any{"app": "shapes", "jobs": 20000, "jitter": 0.03, "seed": 2, "at": 1})
	request("POST", "/api/sessions/"+doomed+"/run", nil)
	doomedStarted, doomedDone := make(chan struct{}), make(chan string, 1)
	go stream(doomed, doomedStarted, doomedDone)
	<-doomedStarted // the run is live; now interrupt it
	request("DELETE", "/api/sessions/"+doomed, nil)
	fmt.Printf("\ncancelled session %s mid-run via DELETE (final state: %s)\n",
		doomed, <-doomedDone)

	// The same comparison as one sweep over a scenario grid.
	sweep := request("POST", "/api/sweep", map[string]any{
		"vm_types": []string{string(trace.HighCPU16), string(trace.HighCPU32)},
		"policies": []string{"reuse", "on-demand"},
		"vms":      32, "seed": 7, "model": params,
		"bag": map[string]any{"app": app.Name, "jobs": 50, "jitter": 0.03, "seed": 1},
	})
	fmt.Printf("\nsweep: %s x {reuse, on-demand}, 50 jobs per cell:\n", "{hc16, hc32}")
	cells := sweep["cells"].([]any)
	for _, c := range cells {
		cell := c.(map[string]any)
		if cell["error"] != nil {
			fmt.Printf("  %-14s %-10s error: %v\n", cell["vm_type"], cell["policy"], cell["error"])
			continue
		}
		rep := cell["report"].(map[string]any)
		fmt.Printf("  %-14s %-10s $%.4f/job  makespan %5.2fh  %v preemptions\n",
			cell["vm_type"], cell["policy"],
			rep["cost_per_job"], rep["makespan_hours"], rep["preemptions"])
	}
	fmt.Printf("  cheapest: %v, fastest: %v\n", sweep["cheapest_session"], sweep["fastest_session"])
}
