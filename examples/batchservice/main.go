// Batchservice: the end-to-end batch computing service of Section 5,
// driven through its HTTP API.
//
// This launches the service over the simulated cloud, submits a bag of 100
// Nanoconfinement jobs through HTTP, runs the bag on preemptible VMs with
// the model-driven reuse policy, and contrasts cost and preemption behavior
// against a conventional on-demand deployment (Figure 9a).
//
// Run with: go run ./examples/batchservice
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		log.Fatalf("fitting model: %v", err)
	}

	run := func(preemptible bool) map[string]any {
		app := workload.Nanoconfinement
		gang := batch.GangSizeFor(app, trace.HighCPU32) // 2 VMs per 64-core job
		api := batch.NewAPI(func() (*batch.Service, error) {
			return batch.New(batch.Config{
				VMType:         trace.HighCPU32,
				Zone:           trace.USEast1B,
				Gangs:          32 / gang,
				GangSize:       gang,
				Preemptible:    preemptible,
				HotSpareTTL:    1,
				Model:          model,
				UseReusePolicy: true,
				Seed:           7,
			})
		})
		srv := httptest.NewServer(api.Handler())
		defer srv.Close()

		post := func(path string, body any) map[string]any {
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				log.Fatal(err)
			}
			resp, err := http.Post(srv.URL+path, "application/json", &buf)
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				log.Fatal(err)
			}
			if resp.StatusCode >= 300 {
				log.Fatalf("%s: %v", path, out)
			}
			return out
		}
		post("/api/bags", map[string]any{"app": app.Name, "jobs": 100, "jitter": 0.03, "seed": 1})
		return post("/api/run", map[string]any{})
	}

	fmt.Println("bag of 100 nanoconfinement jobs on 32x n1-highcpu-32:")
	pre := run(true)
	od := run(false)
	fmt.Printf("\n  preemptible: $%.4f/job, %v preemptions, makespan %.2fh (+%.1f%%)\n",
		pre["cost_per_job"], pre["preemptions"], pre["makespan_hours"], pre["increase_pct"])
	fmt.Printf("  on-demand:   $%.4f/job, %v preemptions, makespan %.2fh\n",
		od["cost_per_job"], od["preemptions"], od["makespan_hours"])
	ratio := od["cost_per_job"].(float64) / pre["cost_per_job"].(float64)
	fmt.Printf("\n  our service is %.1fx cheaper (paper: ~5x)\n", ratio)
}
