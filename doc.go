// Package repro is a from-scratch Go reproduction of "Modeling The
// Temporally Constrained Preemptions of Transient Cloud VMs" (Kadupitiya,
// Jadhao, Sharma; HPDC 2020).
//
// The library implements the paper's constrained-preemption probability
// model and everything it depends on: hand-rolled least-squares fitting
// (internal/fit), failure distributions (internal/dist), a synthetic
// preemption study standing in for the paper's Google Preemptible VM
// measurements (internal/trace), model-driven scheduling and checkpointing
// policies (internal/policy), a discrete-event cloud and cluster simulator
// (internal/sim, internal/cloud, internal/cluster), and the batch computing
// service of Section 5 (internal/batch). internal/experiments regenerates
// every figure of the paper's evaluation; bench_test.go in this directory
// exposes one benchmark per figure.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// paper-faithfulness notes, and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
