package repro

// Cross-module integration tests: each exercises the full pipeline
// (synthetic study -> fitting -> model -> policies -> simulated service)
// rather than a single package.

import (
	"context"
	"math"
	"testing"

	"repro/internal/batch"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/empirical"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestEndToEndModelPredictsSimulator checks the consistency loop the whole
// reproduction rests on: a model fitted to trace data must predict the
// lifetimes that the cloud simulator (driven by the same ground truth)
// actually produces.
func TestEndToEndModelPredictsSimulator(t *testing.T) {
	sc := trace.DefaultScenario()
	model, rep, err := core.Fit(trace.Generate(sc, 3000, 11), trace.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.R2 < 0.98 {
		t.Fatalf("fit R2 = %v", rep.R2)
	}

	// Launch many VMs in the simulator at a clock time matching the
	// scenario (daytime) and record their lifetimes.
	engine := sim.NewEngine()
	engine.RunUntil(9) // 9AM: trace.Day
	provider := cloud.NewProvider(engine, 77, trace.Busy)
	const n = 1500
	vms := make([]*cloud.VM, n)
	for i := range vms {
		vm, err := provider.Launch(sc.Type, sc.Zone, true)
		if err != nil {
			t.Fatal(err)
		}
		vms[i] = vm
	}
	engine.Run()
	lifetimes := make([]float64, n)
	for i, vm := range vms {
		if vm.State != cloud.VMPreempted {
			t.Fatalf("VM %s not preempted", vm.ID)
		}
		lifetimes[i] = vm.EndedAt - vm.LaunchedAt
	}

	// The fitted model's CDF must track the simulated empirical CDF.
	d := empirical.KSDistance(lifetimes, model.CDF)
	if d > 0.08 {
		t.Fatalf("KS(model, simulated lifetimes) = %v", d)
	}
}

// TestReusePolicyBeatsNaiveServiceOnFailures runs the same bag through the
// service with and without the model-driven reuse policy and checks the
// policy reduces preemption-induced job failures per completed job — the
// service-level consequence of Figures 5-6.
func TestReusePolicyBeatsNaiveServiceOnFailures(t *testing.T) {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	run := func(usePolicy bool, seed uint64) batch.Report {
		cfg := batch.Config{
			VMType:         trace.HighCPU16,
			Zone:           trace.USEast1B,
			Gangs:          4,
			GangSize:       1,
			Preemptible:    true,
			HotSpareTTL:    1,
			Model:          model,
			UseReusePolicy: usePolicy,
			Seed:           seed,
		}
		svc, err := batch.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bag := workload.Bag{App: workload.Nanoconfinement}
		for i := 0; i < 40; i++ {
			bag.Jobs = append(bag.Jobs, workload.JobSpec{
				ID:      "j" + string(rune('a'+i/26)) + string(rune('a'+i%26)),
				App:     "nanoconfinement",
				Runtime: 4, // long jobs: deadline-risky placements matter
			})
		}
		if err := svc.SubmitBag(bag); err != nil {
			t.Fatal(err)
		}
		rep, err := svc.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.JobsCompleted != 40 {
			t.Fatalf("completed %d", rep.JobsCompleted)
		}
		return rep
	}
	// Average over several seeds to damp run-to-run noise.
	var withFails, withoutFails float64
	const seeds = 5
	for s := uint64(0); s < seeds; s++ {
		withFails += float64(run(true, 100+s).JobFailures)
		withoutFails += float64(run(false, 100+s).JobFailures)
	}
	// The policy must not increase failures; typically it reduces them by
	// avoiding deadline-crossing placements.
	if withFails > withoutFails {
		t.Fatalf("reuse policy increased failures: %v vs %v (sum over %d seeds)",
			withFails, withoutFails, seeds)
	}
}

// TestCheckpointedServiceMakespanBound: with DP checkpointing the total
// makespan of a long-job bag must stay within a modest factor of the ideal,
// because lost work per preemption is bounded by one checkpoint interval.
func TestCheckpointedServiceMakespanBound(t *testing.T) {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	cfg := batch.Config{
		VMType:          trace.HighCPU16,
		Zone:            trace.USEast1B,
		Gangs:           4,
		GangSize:        1,
		Preemptible:     true,
		HotSpareTTL:     1,
		Model:           model,
		UseReusePolicy:  true,
		CheckpointDelta: 1.0 / 60,
		CheckpointStep:  5.0 / 60,
		Seed:            9,
	}
	svc, err := batch.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bag := workload.Bag{App: workload.Nanoconfinement}
	for i := 0; i < 16; i++ {
		bag.Jobs = append(bag.Jobs, workload.JobSpec{
			ID: "ck" + string(rune('a'+i)), App: "nanoconfinement", Runtime: 5,
		})
	}
	if err := svc.SubmitBag(bag); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobsCompleted != 16 {
		t.Fatalf("completed %d", rep.JobsCompleted)
	}
	// 80 work-hours over 4 gangs = 20h ideal; checkpointing bounds the
	// blowup well under a 2x factor even with preemptions.
	if rep.Makespan > 2*rep.IdealMakespan {
		t.Fatalf("makespan %vh more than doubles ideal %vh", rep.Makespan, rep.IdealMakespan)
	}
}

// TestMultiFailureMakespanMatchesMonteCarlo cross-validates the analytic
// geometric-restart makespan against direct simulation of the restart
// process.
func TestMultiFailureMakespanMatchesMonteCarlo(t *testing.T) {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2500, 42), trace.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	cfg := policy.MCConfig{Runs: 8000, Seed: 17}
	for _, c := range []struct{ s, T float64 }{
		{0, 1}, {0, 3}, {0, 6}, {8, 4}, {20, 6},
	} {
		analytic := model.ExpectedMakespanMultiFailureAt(c.s, c.T)
		mc := policy.MCMakespanNoCheckpoint(model, c.T, c.s, cfg)
		if math.Abs(analytic-mc) > 0.06*analytic+0.05 {
			t.Fatalf("s=%v T=%v: analytic %v vs MC %v", c.s, c.T, analytic, mc)
		}
	}
}

// TestPolicyConsistencyModelVsPlanner: the checkpoint DP's expected
// makespan at age 0 for a tiny job must approach the job length (no
// checkpoints, negligible failure mass), tying the planner's scale to the
// model's.
func TestPolicyConsistencyModelVsPlanner(t *testing.T) {
	model, _, err := core.Fit(trace.Generate(trace.DefaultScenario(), 2000, 42), trace.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	dp := policy.NewCheckpointPlanner(model, 1.0/60, 5.0/60)
	const tiny = 10.0 / 60              // 10 minutes
	em := dp.ExpectedMakespan(tiny, 10) // stable phase: essentially no risk
	if math.Abs(em-tiny) > 0.02 {
		t.Fatalf("tiny-job makespan %v differs from %v", em, tiny)
	}
}
